"""Run protocols under :class:`SimulationSettings` and aggregate metrics.

"All the simulation results were the means of 100 runs of simulations with
different random seeds" (Section 7); :func:`run_protocol` averages
:class:`~repro.metrics.aggregate.RunMetrics` over a seed list the caller
chooses (the benchmarks default to fewer runs for wall-clock reasons and
record how many in their output).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Any, Iterable, Sequence, Type

from repro.experiments.config import SimulationSettings, protocol_class
from repro.experiments.scenario import Scenario
from repro.mac.base import MacBase, MacConfig, MacRequest
from repro.metrics.aggregate import RunMetrics, summarize_run
from repro.obs.counters import Counters, merge_counter_dicts
from repro.obs.events import Subscriber
from repro.obs.manifest import RunManifest, settings_to_dict
from repro.obs.profile import PhaseTimer
from repro.phy.capture import ZorziRaoCapture
from repro.phy.propagation import UnitDiskPropagation
from repro.sim.channel import ChannelStats
from repro.sim.network import Network
from repro.workload.cache import WorldParts
from repro.workload.generator import TrafficGenerator
from repro.workload.topology import uniform_square

__all__ = [
    "RawRun",
    "MeanMetrics",
    "build_network",
    "run_raw",
    "run",
    "run_once",
    "run_protocol",
    "compare",
]


def _warn_legacy(func: str, hint: str) -> None:
    warnings.warn(
        f"{func}(...) with positional settings/seeds is deprecated; "
        f"pass a repro.Scenario instead, e.g. {func}({hint})",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class RawRun:
    """Everything needed to (re-)score one run, plus its provenance."""

    requests: list[MacRequest]
    stats: ChannelStats
    average_degree: float
    settings: SimulationSettings
    seed: int
    #: Observability counters collected during the run (totals + per-node).
    counters: Counters = field(default_factory=Counters)
    #: Wall-clock seconds per phase (``build`` / ``inject`` / ``simulate``).
    timings: dict[str, float] = field(default_factory=dict)
    #: Simulate-phase wall clock attributed to MAC phases by the kernel
    #: phase profiler (:mod:`repro.obs.profiler`); ``None`` unless the run
    #: was started with ``profile=True``.  Sums to ``timings["simulate"]``.
    mac_profile: dict[str, float] | None = None

    def metrics(self, threshold: float | None = None) -> RunMetrics:
        th = self.settings.threshold if threshold is None else threshold
        return summarize_run(self.requests, self.stats, threshold=th, counters=self.counters)

    def manifest(self, protocol: str | None = None) -> RunManifest:
        """Provenance record for this run (see :mod:`repro.obs.manifest`)."""
        # None means "not timed"; an untimed run has no phases at all.  A
        # recorded sum of 0.0 (sub-resolution fast run) is a legitimate
        # measurement and must survive so sweep manifests aggregate cleanly.
        wall = sum(self.timings.values()) if self.timings else None
        sim_slots = float(self.settings.horizon)
        simulate_s = self.timings.get("simulate", 0.0)
        extra: dict = {}
        if self.mac_profile is not None:
            extra["mac_profile"] = dict(self.mac_profile)
        return RunManifest(
            protocol=protocol,
            seed=self.seed,
            settings=settings_to_dict(self.settings),
            wall_clock_s=wall,
            timings=dict(self.timings),
            sim_slots=sim_slots,
            slots_per_sec=(sim_slots / simulate_s) if simulate_s > 0 else None,
            n_requests=len(self.requests),
            counters=dict(self.counters.total),
            extra=extra,
        )


@dataclass(frozen=True)
class MeanMetrics:
    """Seed-averaged metrics for one protocol at one sweep point."""

    delivery_rate: float
    delivery_rate_std: float
    avg_contention_phases: float
    avg_completion_time: float
    average_degree: float
    n_runs: int
    n_requests: int
    #: Observability counter totals summed over all seeds; identical
    #: whether the seeds ran serially or across the process pool (tested).
    counters: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_runs(runs: Sequence[RunMetrics], degrees: Sequence[float]) -> "MeanMetrics":
        if not runs:
            raise ValueError("no runs to aggregate")
        rates = [r.delivery_rate for r in runs]
        return MeanMetrics(
            delivery_rate=mean(rates),
            delivery_rate_std=pstdev(rates) if len(rates) > 1 else 0.0,
            avg_contention_phases=mean(r.avg_contention_phases for r in runs),
            avg_completion_time=mean(r.avg_completion_time for r in runs),
            average_degree=mean(degrees),
            n_runs=len(runs),
            n_requests=sum(r.n_requests for r in runs),
            counters=merge_counter_dicts(r.counters for r in runs),
        )


def build_network(
    mac_cls: Type[MacBase],
    settings: SimulationSettings,
    seed: int,
    mac_kwargs: dict[str, Any] | None = None,
    record_transmissions: bool = False,
    propagation: "UnitDiskPropagation | None" = None,
) -> Network:
    """Construct the network for one run (placement seeded by *seed*).

    *propagation* supplies a prebuilt topology (the sweep engine's
    shared-world path); when omitted the placement and unit-disk sets are
    built fresh, bit-identically to what
    :meth:`repro.workload.cache.WorldCache.world` caches.
    """
    positions = (
        propagation.positions
        if propagation is not None
        else uniform_square(settings.n_nodes, seed=seed, side=settings.side)
    )
    return Network(
        positions,
        settings.radius,
        mac_cls,
        capture=ZorziRaoCapture() if settings.capture else None,
        frame_error_rate=settings.frame_error_rate,
        seed=seed,
        mac_config=MacConfig(
            contention=settings.contention,
            timeout_slots=settings.timeout_slots,
            receiver_give_up=settings.faults.receiver_give_up,
            phy=settings.phy,
        ),
        mac_kwargs=mac_kwargs,
        record_transmissions=record_transmissions,
        interference_factor=settings.interference_factor,
        propagation=propagation,
        faults=settings.faults,
    )


def run_raw(
    mac_cls: Type[MacBase],
    settings: SimulationSettings,
    seed: int,
    mac_kwargs: dict[str, Any] | None = None,
    *,
    record_transmissions: bool = False,
    subscribers: Iterable[Subscriber] = (),
    world: "WorldParts | None" = None,
    profile: bool = False,
) -> RawRun:
    """One full simulation run; returns raw material for scoring.

    The topology and the traffic schedule depend only on (*settings*,
    *seed*), so different protocols at the same seed face identical
    workloads.  *world* supplies those protocol-independent artifacts
    prebuilt (see :class:`repro.workload.cache.WorldCache`); the
    environment, channel, RNG streams and MAC instances are still
    constructed fresh here, so a cached run is bit-identical to a cold
    one (tested).  *subscribers* are attached to the network's event bus
    for the duration of the run (e.g. a
    :class:`~repro.obs.trace.JsonlTraceWriter`); observability events and
    subscribers never touch the RNG streams, so an observed run is
    bit-identical to a bare one.  *profile* attaches a
    :class:`~repro.obs.profiler.KernelPhaseProfiler` (another inert
    subscriber) and surfaces its attribution as ``RawRun.mac_profile``.
    """
    timer = PhaseTimer()
    with timer.phase("build"):
        net = build_network(
            mac_cls,
            settings,
            seed,
            mac_kwargs,
            record_transmissions,
            propagation=world.propagation if world is not None else None,
        )
        for subscriber in subscribers:
            net.env.obs.subscribe(subscriber)
        profiler = None
        if profile:
            from repro.obs.profiler import KernelPhaseProfiler

            profiler = KernelPhaseProfiler().attach(net.env)
    with timer.phase("inject"):
        gen = (
            world.generator
            if world is not None
            else TrafficGenerator(
                settings.n_nodes,
                net.propagation.neighbors,
                horizon=settings.horizon,
                message_rate=settings.message_rate,
                mix=settings.mix,
                seed=seed,
            )
        )
        requests = gen.inject(net)
    with timer.phase("simulate"):
        net.run(until=settings.horizon)
    mac_profile = None
    if profiler is not None:
        mac_profile = dict(profiler.finish(timer.timings.get("simulate")))
    return RawRun(
        requests,
        net.channel.stats,
        net.average_degree(),
        settings,
        seed,
        counters=net.channel.counters,
        timings=timer.timings,
        mac_profile=mac_profile,
    )


def run_once(
    mac_cls: "Type[MacBase] | Scenario",
    settings: SimulationSettings | None = None,
    seed: int | None = None,
    mac_kwargs: dict[str, Any] | None = None,
) -> RunMetrics:
    """One run, scored at the scenario's threshold.

    Canonical form: ``run_once(Scenario(settings=..., protocols="BMMM",
    seeds=7))`` — exactly one protocol and one seed.  The legacy
    ``run_once(mac_cls, settings, seed)`` signature is deprecated.
    """
    if isinstance(mac_cls, Scenario):
        sc = mac_cls
        if settings is not None or seed is not None or mac_kwargs is not None:
            raise TypeError("run_once(Scenario) takes no further arguments")
        cls, kwargs = protocol_class(sc.protocol)
        return run_raw(cls, sc.settings, sc.seed, kwargs).metrics(sc.threshold)
    _warn_legacy("run_once", 'Scenario(settings=s, protocols="BMMM", seeds=0)')
    assert settings is not None and seed is not None
    return run_raw(mac_cls, settings, seed, mac_kwargs).metrics()


def _mean_metrics(
    name: str,
    settings: SimulationSettings,
    seeds: Sequence[int],
    threshold: float | None = None,
) -> MeanMetrics:
    mac_cls, kwargs = protocol_class(name)
    runs: list[RunMetrics] = []
    degrees: list[float] = []
    for seed in seeds:
        raw = run_raw(mac_cls, settings, seed, kwargs)
        runs.append(raw.metrics(threshold))
        degrees.append(raw.average_degree)
    return MeanMetrics.from_runs(runs, degrees)


def run_protocol(
    name: "str | Scenario",
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] | None = None,
) -> MeanMetrics:
    """Seed-averaged metrics for a single registered protocol.

    Canonical form: ``run_protocol(Scenario(protocols="LAMM",
    seeds=range(100)))``.  The legacy ``run_protocol(name, settings,
    seeds)`` signature is deprecated.
    """
    if isinstance(name, Scenario):
        if settings is not None or seeds is not None:
            raise TypeError("run_protocol(Scenario) takes no further arguments")
        return _mean_metrics(name.protocol, name.settings, name.seeds, name.threshold)
    _warn_legacy("run_protocol", 'Scenario(settings=s, protocols="LAMM", seeds=range(20))')
    assert settings is not None and seeds is not None
    return _mean_metrics(name, settings, list(seeds))


def run(scenario: Scenario) -> dict[str, MeanMetrics]:
    """Run every protocol of *scenario* on identical workloads.

    The canonical entry point for one-point experiments (the sweep engine
    handles grids): returns ``{protocol: MeanMetrics}`` in the scenario's
    protocol order.  Topology and traffic depend only on (settings, seed),
    so all protocols face the same workloads.
    """
    return {
        name: _mean_metrics(name, scenario.settings, scenario.seeds, scenario.threshold)
        for name in scenario.protocols
    }


def compare(
    names: "Sequence[str] | Scenario",
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] | None = None,
) -> dict[str, MeanMetrics]:
    """Run several protocols on identical workloads.

    Canonical form: ``compare(Scenario(...))`` — equivalent to
    :func:`run`.  The legacy ``compare(names, settings, seeds)``
    signature is deprecated.
    """
    if isinstance(names, Scenario):
        if settings is not None or seeds is not None:
            raise TypeError("compare(Scenario) takes no further arguments")
        return run(names)
    _warn_legacy("compare", "Scenario(settings=s, protocols=names, seeds=range(20))")
    assert settings is not None and seeds is not None
    seeds = list(seeds)
    return {name: _mean_metrics(name, settings, seeds) for name in names}
