"""The rate sweep: delivered throughput vs. reliability across MCS spreads.

The multi-rate question the :class:`~repro.phy.profile.PhyProfile` API
exists to ask: how much delivered throughput does rate adaptation buy,
and what does it cost in reliability, as the rate table's spread widens?
Each sweep point is the *same* Table-2 world under a different profile
-- from the paper's single-rate 5-slot DATA up to an aggressive 3-tier
table -- so a fixed-rate protocol (LAMM) and the rate-adaptive RAM face
identical workloads and the delta is pure rate policy.

``repro-mac rate-sweep`` drives this and writes ``BENCH_rate.json``: one
record per (profile, protocol) cell with the delivery rate, delivered
requests per kslot, completion time and the rate-machinery counters
(per-MCS round counts, channel rate losses), stamped with the git commit
and code fingerprint like every other BENCH surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.config import SimulationSettings
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import SweepResult, run_sweep
from repro.phy.profile import PhyProfile
from repro.store.digests import code_fingerprint, git_commit

__all__ = [
    "RATE_PROFILES",
    "RATE_SWEEP_PROTOCOLS",
    "run_rate_sweep",
    "rate_bench_record",
    "save_rate_bench",
]

#: The MCS-spread axis, mildest first.  Fractions follow the usual
#: range/rate tradeoff shape (faster MCS needs more SNR, so less range):
#: "mild" adds one 3-slot tier reaching 70% of the cell radius,
#: "aggressive" adds a 2-slot tier reaching 45%.
RATE_PROFILES: dict[str, PhyProfile] = {
    "single": PhyProfile(),
    "mild": PhyProfile(signal_slots=1, data_slots=(5, 3), range_fractions=(1.0, 0.7)),
    "aggressive": PhyProfile(
        signal_slots=1, data_slots=(5, 3, 2), range_fractions=(1.0, 0.65, 0.45)
    ),
}

#: The head-to-head the sweep exists for: fixed-rate LAMM vs. RAM.
RATE_SWEEP_PROTOCOLS = ("LAMM", "RAM")


def run_rate_sweep(
    base: SimulationSettings | None = None,
    *,
    protocols: Sequence[str] = RATE_SWEEP_PROTOCOLS,
    profiles: Mapping[str, PhyProfile] | None = None,
    seeds: Sequence[int] = (0, 1, 2),
    processes: int | None = None,
    store=None,
    telemetry=None,
    profile: bool = False,
    campaign: str = "rate",
) -> tuple[SweepResult, list[str]]:
    """Run the protocols x profiles x seeds grid.

    Returns ``(result, profile_names)``; point *i* of the result is
    ``profiles[profile_names[i]]`` applied to *base*.
    """
    base = base if base is not None else SimulationSettings()
    profiles = dict(profiles) if profiles is not None else dict(RATE_PROFILES)
    names = list(profiles)
    points = [base.with_(phy=profiles[n]) for n in names]
    scenario = Scenario(settings=base, protocols=tuple(protocols), seeds=tuple(seeds))
    result = run_sweep(
        scenario,
        points,
        processes=processes,
        store=store,
        telemetry=telemetry,
        profile=profile,
        campaign=campaign,
    )
    return result, names


#: Counters worth surfacing per cell (per-MCS rounds are matched by prefix).
_RATE_COUNTER_PREFIXES = ("ram.rounds_mcs", "rate_losses")


def rate_bench_record(
    result: SweepResult, profile_names: Sequence[str], name: str = "rate"
) -> dict:
    """The ``BENCH_rate.json`` payload: the throughput/reliability surface."""
    cells = []
    for idx, pname in enumerate(profile_names):
        prof = result.points[idx].phy
        for proto in result.protocols:
            mm = result.mean(idx, proto)
            horizon = result.points[idx].horizon
            per_run_requests = mm.n_requests / mm.n_runs if mm.n_runs else 0.0
            cells.append(
                {
                    "profile": pname,
                    "data_slots": list(prof.data_slots),
                    "range_fractions": list(prof.range_fractions),
                    "protocol": proto,
                    "delivery_rate": mm.delivery_rate,
                    "delivered_per_kslot": (
                        mm.delivery_rate * per_run_requests / horizon * 1000.0
                    ),
                    "avg_completion_time": mm.avg_completion_time,
                    "avg_contention_phases": mm.avg_contention_phases,
                    "n_runs": mm.n_runs,
                    "n_requests": mm.n_requests,
                    "counters": {
                        k: v
                        for k, v in sorted(mm.counters.items())
                        if any(k.startswith(p) for p in _RATE_COUNTER_PREFIXES)
                    },
                }
            )
    return {
        "name": name,
        "kind": "rate-sweep",
        "profiles": list(profile_names),
        "protocols": list(result.protocols),
        "seeds": list(result.seeds),
        "slots_per_sec": result.slots_per_sec,
        "cells": cells,
        "git_commit": git_commit(),
        "code_fingerprint": code_fingerprint(),
    }


def save_rate_bench(
    result: SweepResult,
    profile_names: Sequence[str],
    out_dir: str | Path,
    name: str = "rate",
) -> Path:
    """Write ``BENCH_<name>.json`` under *out_dir*; returns the path."""
    path = Path(out_dir) / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rate_bench_record(result, profile_names, name), indent=2))
    return path
