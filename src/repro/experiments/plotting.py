"""Terminal rendering of reproduced figures: ASCII line charts.

The benchmarks and CLI run in terminals without a display, so every
figure can be rendered as a compact ASCII chart -- enough to eyeball the
*shape* the paper reports (who is on top, how curves bend) without leaving
the shell.  Matplotlib is deliberately not a dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.figures import FigureResult

__all__ = ["ascii_chart", "render_figure"]

#: Series are assigned single-character markers in this order.
MARKERS = "ox*+#@%&"


def _scale(v: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    t = (v - lo) / (hi - lo)
    return max(0, min(size - 1, round(t * (size - 1))))


def ascii_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render multiple (x, y) series as an ASCII chart.

    Later-plotted series overwrite earlier ones on shared cells; the
    legend maps markers to names.
    """
    if not xs:
        raise ValueError("no x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != {len(xs)} xs")
    all_y = [y for ys in series.values() for y in ys if not math.isnan(y)]
    if not all_y:
        raise ValueError("no finite y values")
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), MARKERS):
        # Line interpolation between consecutive points.
        pts = [
            (_scale(x, x_lo, x_hi, width), _scale(y, lo, hi, height))
            for x, y in zip(xs, ys)
            if not math.isnan(y)
        ]
        for (c0, r0), (c1, r1) in zip(pts, pts[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                c = round(c0 + (c1 - c0) * s / steps)
                r = round(r0 + (r1 - r0) * s / steps)
                grid[height - 1 - r][c] = "."
        for c, r in pts:
            grid[height - 1 - r][c] = marker

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.3g} |"
        elif i == height - 1:
            label = f"{lo:8.3g} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10.4g}{'':{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), MARKERS)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def render_figure(result: FigureResult, width: int = 60, height: int = 16) -> str:
    """ASCII chart of a :class:`FigureResult`, titled and labelled."""
    chart = ascii_chart(result.xs, result.series, width, height)
    return (
        f"{result.name}: {result.ylabel}\n"
        f"(x: {result.xlabel})\n{chart}"
    )
