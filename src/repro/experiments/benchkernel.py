"""Kernel and fast-path micro-benchmarks behind ``repro-mac bench-kernel``.

The sweep-level ``BENCH_<name>.json`` records end-to-end campaign
throughput; this module pins the *substrate* underneath it, one fast path
per case, so a regression can be attributed to the layer that caused it:

``timeout_churn``
    Raw event dispatch through freshly allocated :class:`Timeout` objects
    -- the kernel's unpooled slow path (events/sec).
``sleep_churn``
    The same churn through :meth:`Environment.sleep`, which recycles
    retired timeouts from a bounded pool -- the allocation-diet fast path
    (events/sec).  The gap between the two is the diet's win.
``idle_network``
    A zero-traffic network: idle-slot skipping plus the event-driven
    kernel must make untrafficked simulated time almost free (slots/sec).
``sparse_network``
    A lightly loaded network -- long idle DIFS/backoff stretches between
    frames; the idle-slot skipper's bread-and-butter case (slots/sec).
``dense_network``
    The reception-heavy corner (4x the default rate): dominated by the
    channel's overlap scans and capture ranking, i.e. the vectorized
    reception tables (slots/sec).
``contention_heavy``
    The headline idle-slot-skipping case: sparse traffic contended with
    the 802.11 maximum window (CW = 1024), so each of a sender's
    per-receiver rounds burns hundreds of provably idle backoff slots.
    The pre-fast-path machine stepped the kernel once per slot here; the
    fast path collapses each solo phase to a handful of events.
``dense_contention``
    Many stations *simultaneously* in backoff with CW = 1024 (20x the
    contention_heavy arrival rate).  Before commit horizons, every
    contender's pending mid-slot sample truncated every other
    contender's skip, so concurrency silently degraded the fast path
    back toward per-slot stepping; with published commit bounds the
    skipper stays event-scaled.  This case pins that concurrent win.
``observer_overhead``
    The price of looking: the same traffic-heavy run three times --
    unobserved (emit sites pay only the ``obs.active`` guard), with a
    minimal counting subscriber (every site builds and dispatches a
    :class:`SimEvent`), and with the kernel phase profiler attached.
    Metrics are bit-identical across the three (the no-op discipline);
    this case pins how much wall clock observation itself costs.

Every record is stamped with the git commit and the simulation-code
fingerprint (like :func:`repro.experiments.sweep.bench_record`) so the
bench trajectory stays attributable across PRs.  The results are wall
-clock measurements: meaningful relative to a baseline on the same
machine, not across machines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from repro.experiments.config import SimulationSettings, protocol_class
from repro.experiments.runner import run_raw
from repro.mac.contention import ContentionParams
from repro.sim.kernel import Environment
from repro.store.digests import code_fingerprint, git_commit

__all__ = [
    "bench_timeout_churn",
    "bench_sleep_churn",
    "bench_network_case",
    "bench_observer_overhead",
    "kernel_bench_record",
    "save_kernel_bench",
    "format_kernel_bench",
    "NETWORK_CASES",
]


def _timed(fn: Callable[[], object]) -> tuple[object, float]:
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_timeout_churn(n_events: int = 200_000) -> dict:
    """Dispatch *n_events* freshly allocated timeouts through one process."""

    def run() -> float:
        env = Environment()

        def proc():
            for _ in range(n_events):
                yield env.timeout(1)

        env.process(proc())
        env.run()
        return env.now

    _, wall = _timed(run)
    return {
        "events": n_events,
        "wall_clock_s": wall,
        "events_per_sec": n_events / wall if wall > 0 else None,
    }


def bench_sleep_churn(n_events: int = 200_000) -> dict:
    """Dispatch *n_events* pooled ``sleep`` timeouts through one process."""

    def run() -> float:
        env = Environment()

        def proc():
            for _ in range(n_events):
                yield env.sleep(1)

        env.process(proc())
        env.run()
        return env.now

    _, wall = _timed(run)
    return {
        "events": n_events,
        "wall_clock_s": wall,
        "events_per_sec": n_events / wall if wall > 0 else None,
    }


#: The full-simulation cases: name -> settings overrides (seed 0, BMMM).
#: A ``"cw"`` key is not a :class:`SimulationSettings` field -- it expands
#: to ``contention=ContentionParams(cw_min=cw, cw_max=cw)`` so the case
#: table stays JSON-serializable for the bench record's settings echo.
NETWORK_CASES: dict[str, dict] = {
    "idle_network": {"n_nodes": 100, "horizon": 50_000, "message_rate": 0.0},
    "sparse_network": {"n_nodes": 60, "horizon": 20_000, "message_rate": 0.0001},
    "dense_network": {"n_nodes": 100, "horizon": 2_000, "message_rate": 0.002},
    "contention_heavy": {
        "n_nodes": 50,
        "horizon": 200_000,
        "message_rate": 0.00001,
        "cw": 1024,
    },
    "dense_contention": {
        "n_nodes": 50,
        "horizon": 20_000,
        "message_rate": 0.0002,
        "cw": 1024,
    },
}


def bench_network_case(case: str, *, protocol: str = "BMMM", seed: int = 0) -> dict:
    """Run one :data:`NETWORK_CASES` scenario; report simulated slots/sec."""
    overrides = NETWORK_CASES[case]
    kwargs_settings = dict(overrides)
    cw = kwargs_settings.pop("cw", None)
    if cw is not None:
        kwargs_settings["contention"] = ContentionParams(cw_min=cw, cw_max=cw)
    settings = SimulationSettings(**kwargs_settings)
    mac_cls, kwargs = protocol_class(protocol)
    raw, wall = _timed(lambda: run_raw(mac_cls, settings, seed, kwargs))
    # slots/sec rates the simulator proper (the RunManifest convention):
    # world building and schedule pre-generation are setup, not stepping.
    simulate_s = raw.timings.get("simulate", 0.0)
    return {
        "protocol": protocol,
        "seed": seed,
        "settings": overrides,
        "n_requests": len(raw.requests),
        "sim_slots": float(settings.horizon),
        "wall_clock_s": wall,
        "simulate_s": simulate_s,
        "slots_per_sec": settings.horizon / simulate_s if simulate_s > 0 else None,
    }


#: The observer-overhead scenario: busy enough that emit sites fire often
#: (the guard's worst case), short enough to run three times per record.
_OBSERVER_CASE: dict = {"n_nodes": 60, "horizon": 2_000, "message_rate": 0.002}


def bench_observer_overhead(*, protocol: str = "BMMM", seed: int = 0) -> dict:
    """Price the event bus and its instruments on one busy scenario.

    Runs the same (settings, seed) three ways -- bare, with a minimal
    counting subscriber, and with the kernel phase profiler -- and
    reports simulate-phase slots/sec for each plus the observed/profiled
    overhead as a ratio over bare.  The three runs' delivery metrics are
    bit-identical (no-op discipline, pinned by the obs/profiler tests);
    only the wall clock is allowed to move.
    """
    settings = SimulationSettings(**_OBSERVER_CASE)
    mac_cls, kwargs = protocol_class(protocol)

    def one(**kw) -> tuple[float, object]:
        raw = run_raw(mac_cls, settings, seed, kwargs, **kw)
        return raw.timings.get("simulate", 0.0), raw

    bare_s, raw = one()
    seen = {"events": 0}

    def counting_subscriber(event) -> None:
        seen["events"] += 1

    observed_s, _ = one(subscribers=[counting_subscriber])
    profiled_s, _ = one(profile=True)
    horizon = float(settings.horizon)

    def rate(simulate_s: float) -> float | None:
        return horizon / simulate_s if simulate_s > 0 else None

    return {
        "protocol": protocol,
        "seed": seed,
        "settings": dict(_OBSERVER_CASE),
        "n_requests": len(raw.requests),
        "n_events": seen["events"],
        "sim_slots": horizon,
        "wall_clock_s": bare_s + observed_s + profiled_s,
        "bare_slots_per_sec": rate(bare_s),
        "observed_slots_per_sec": rate(observed_s),
        "profiled_slots_per_sec": rate(profiled_s),
        "observed_overhead": observed_s / bare_s if bare_s > 0 else None,
        "profiled_overhead": profiled_s / bare_s if bare_s > 0 else None,
    }


#: Per-case throughput field the best-of-N selection maximises.
_RATE_KEYS = ("events_per_sec", "slots_per_sec", "bare_slots_per_sec")


def _best_of(fn: Callable[[], dict], repeat: int) -> dict:
    """Run *fn* *repeat* times; keep the fastest sample.

    Wall-clock benchmarks are noisy downward only -- scheduler preemption
    and cache pollution make runs slower, never faster -- so the best of N
    is the least-noisy estimate of the code's true speed.  The kept sample
    carries the total measurement cost in ``measured_wall_clock_s``.
    """
    samples = [fn() for _ in range(max(1, repeat))]

    def rate(sample: dict) -> float:
        for key in _RATE_KEYS:
            if sample.get(key) is not None:
                return sample[key]
        return 0.0

    best = max(samples, key=rate)
    best["measured_wall_clock_s"] = sum(s["wall_clock_s"] for s in samples)
    return best


def kernel_bench_record(
    name: str = "kernel",
    *,
    churn_events: int = 200_000,
    protocol: str = "BMMM",
    repeat: int = 1,
) -> dict:
    """The ``BENCH_kernel.json`` payload: every case, provenance-stamped.

    *repeat* > 1 runs each case that many times and records the fastest
    sample per case (see :func:`_best_of`) -- the CI perf gate uses this
    to keep shared-runner noise out of the regression signal.
    """
    cases: dict[str, dict] = {
        "timeout_churn": _best_of(lambda: bench_timeout_churn(churn_events), repeat),
        "sleep_churn": _best_of(lambda: bench_sleep_churn(churn_events), repeat),
    }
    for case in NETWORK_CASES:
        cases[case] = _best_of(
            lambda case=case: bench_network_case(case, protocol=protocol), repeat
        )
    cases["observer_overhead"] = _best_of(
        lambda: bench_observer_overhead(protocol=protocol), repeat
    )
    return {
        "name": name,
        "kind": "kernel-bench",
        "code": {
            "git_commit": git_commit(),
            "code_fingerprint": code_fingerprint(),
        },
        "churn_events": churn_events,
        "protocol": protocol,
        "repeat": max(1, repeat),
        "wall_clock_s": sum(c["measured_wall_clock_s"] for c in cases.values()),
        "cases": cases,
    }


def save_kernel_bench(record: dict, out_dir: str | Path) -> Path:
    """Write ``BENCH_<name>.json`` under *out_dir*; returns the path."""
    path = Path(out_dir) / f"BENCH_{record['name']}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, default=str))
    return path


def format_kernel_bench(record: dict) -> str:
    """Human-readable one-line-per-case summary of a bench record."""
    lines = [f"kernel bench '{record['name']}' ({record['wall_clock_s']:.2f}s total)"]
    for case, data in record["cases"].items():
        if "events_per_sec" in data:
            rate = data["events_per_sec"] or 0.0
            lines.append(
                f"  {case:<16} {rate:>14,.0f} events/s  ({data['events']:,} events)"
            )
        elif "bare_slots_per_sec" in data:
            bare = data["bare_slots_per_sec"] or 0.0
            observed = data["observed_overhead"]
            profiled = data["profiled_overhead"]
            lines.append(
                f"  {case:<16} {bare:>14,.0f} slots/s   "
                f"(observed x{observed:.2f}, profiled x{profiled:.2f}, "
                f"{data['n_events']:,} bus events)"
                if observed is not None and profiled is not None
                else f"  {case:<16} {bare:>14,.0f} slots/s"
            )
        else:
            rate = data["slots_per_sec"] or 0.0
            lines.append(
                f"  {case:<16} {rate:>14,.0f} slots/s   "
                f"({data['n_requests']} requests, horizon {data['sim_slots']:,.0f})"
            )
    return "\n".join(lines)
