"""Per-figure experiment definitions (Section 7, Figures 2 and 5-10;
Section 6, Table 1).

Every function returns a :class:`FigureResult` whose ``series`` hold one
y-list per protocol over ``xs`` -- the same rows/series the paper plots.
Sweep values follow the paper where it states them (Figure 7 sweeps the
timeout from 100 to 300 slots; Figure 8 sweeps the reliability threshold)
and otherwise bracket the Table 2 operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Any, Iterable, Sequence

import numpy as np

from repro.analysis.contention import table1_row
from repro.analysis.recurrence import figure5_series
from repro.experiments.config import SimulationSettings, protocol_class
from repro.mac.registry import paper_protocols
from repro.experiments.runner import RawRun, run_raw
from repro.mac.base import MessageKind
from repro.sim.frames import FrameType

__all__ = [
    "FigureResult",
    "table1",
    "figure2",
    "figure5",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "figure10a",
    "figure10b",
    "DENSITY_SWEEP_NODES",
    "RATE_SWEEP",
    "TIMEOUT_SWEEP",
    "THRESHOLD_SWEEP",
]

#: Node counts realizing the nodal-density sweeps (x-axis = measured mean
#: neighbor count; 100 nodes at radius 0.2 give ~9.5 neighbors).  Capped
#: at ~14 mean neighbors: beyond that a full-broadcast batch round
#: (4n + 5 slots) no longer fits Table 2's 100-slot timeout even once, so
#: every reliable protocol is structurally dead -- see EXPERIMENTS.md.
DENSITY_SWEEP_NODES = (40, 70, 100, 140)
#: Message generation rates for Figures 6(b)/9(b)/10(b), around Table 2's
#: 0.0005 default.
RATE_SWEEP = (0.00025, 0.0005, 0.001, 0.002)
#: Timeout values for Figure 7 ("ranging from 100 slots to 300 slots").
TIMEOUT_SWEEP = (100, 150, 200, 250, 300)
#: Reliability thresholds for Figure 8.
THRESHOLD_SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class FigureResult:
    """One reproduced table/figure: x values and one series per protocol."""

    name: str
    xlabel: str
    ylabel: str
    xs: list[float]
    series: dict[str, list[float]]
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "xs": self.xs,
            "series": self.series,
            "meta": self.meta,
        }


# --------------------------------------------------------------------------
# Analytical results (no simulation)
# --------------------------------------------------------------------------


def table1() -> FigureResult:
    """Table 1: expected contention phases before the sender sends data."""
    rows = [
        {"q": 0.05, "n": 5, "cover": 4},
        {"q": 0.05, "n": 10, "cover": 6},
    ]
    series: dict[str, list[float]] = {p: [] for p in ("BMMM", "LAMM", "BMW", "BSMA")}
    xs = []
    for row in rows:
        vals = table1_row(row["q"], row["n"], row["cover"])
        xs.append(float(row["n"]))
        for proto, v in vals.items():
            series[proto].append(v)
    return FigureResult(
        name="table1",
        xlabel="n (intended receivers)",
        ylabel="expected contention phases before DATA",
        xs=xs,
        series=series,
        meta={"rows": rows, "paper": {"BMMM": [1.00, 1.00], "LAMM": [1.00, 1.00], "BMW": [1.05, 1.05], "BSMA": [3.27, 4.08]}},
    )


def figure5(n_max: int = 20, p: float = 0.9) -> FigureResult:
    """Figure 5: expected contention phases per multicast vs n (p = 0.9)."""
    data = figure5_series(range(1, n_max + 1), p)
    xs = data.pop("n")
    return FigureResult(
        name="figure5",
        xlabel="number of intended receivers n",
        ylabel="expected contention phases",
        xs=xs,
        series=data,
        meta={"p": p},
    )


# --------------------------------------------------------------------------
# Figure 2: one clean multicast, BMW vs BMMM timeline
# --------------------------------------------------------------------------


def figure2(n_receivers: int = 4, seed: int = 0) -> FigureResult:
    """Figure 2: medium time of one collision-free multicast.

    Places ``n_receivers`` stations around a sender (all mutually in
    range), issues one broadcast, and reports the total slots and frame
    counts for BMW vs BMMM.  The timeline of every transmission is
    returned in ``meta["timeline"]``.
    """
    if n_receivers < 1:
        raise ValueError("need at least one receiver")
    # Star layout, radius small enough that everyone hears everyone.
    angles = np.linspace(0.0, 2 * np.pi, n_receivers, endpoint=False)
    rng = np.random.default_rng(seed)
    radii = 0.02 + 0.05 * rng.random(n_receivers)
    pos = np.vstack([[0.5, 0.5], np.c_[0.5 + radii * np.cos(angles), 0.5 + radii * np.sin(angles)]])

    settings = SimulationSettings(n_nodes=n_receivers + 1, timeout_slots=10_000)
    series: dict[str, list[float]] = {}
    timelines: dict[str, list] = {}
    counts: dict[str, dict[str, int]] = {}
    for name in ("BMW", "BMMM"):
        mac_cls, kwargs = protocol_class(name)
        net = _rebuild_with_positions(mac_cls, settings, seed, kwargs, pos)
        req = net.mac(0).submit(MessageKind.BROADCAST)
        net.run(until=2_000)
        series[name] = [float(req.finish_time - req.service_start)]
        timelines[name] = [
            (tx.start, tx.end, tx.frame.ftype.value, tx.sender) for tx in net.channel.tx_log
        ]
        counts[name] = {
            ft.value: sum(1 for tx in net.channel.tx_log if tx.frame.ftype is ft)
            for ft in FrameType
        }
    return FigureResult(
        name="figure2",
        xlabel="protocol",
        ylabel="medium slots for one clean multicast (excl. arrival gap)",
        xs=[float(n_receivers)],
        series=series,
        meta={"timeline": timelines, "frame_counts": counts, "n_receivers": n_receivers},
    )


def _rebuild_with_positions(mac_cls, settings, seed, kwargs, positions):
    from repro.sim.network import Network
    from repro.mac.base import MacConfig

    return Network(
        positions,
        settings.radius,
        mac_cls,
        capture=None,
        seed=seed,
        mac_config=MacConfig(contention=settings.contention, timeout_slots=settings.timeout_slots),
        mac_kwargs=kwargs,
        record_transmissions=True,
    )


# --------------------------------------------------------------------------
# Simulation sweeps (Figures 6-10)
# --------------------------------------------------------------------------


def _sweep(
    name: str,
    xlabel: str,
    ylabel: str,
    settings_list: Sequence[SimulationSettings],
    xs_from: str,
    metric: str,
    seeds: Iterable[int],
    protocols: Sequence[str] | None = None,
    extra_metrics: Sequence[str] = (),
    processes: int | None = 1,
) -> FigureResult:
    """Generic sweep: run every protocol at every settings point.

    *metric* becomes the figure's series; any *extra_metrics* are computed
    from the same runs and stored under ``meta["extra"][metric_name]``
    (same {protocol: [values]} layout) -- used by benchmarks that want a
    companion metric without re-simulating.  The whole grid runs through
    :func:`repro.experiments.sweep.run_sweep`: one long-lived pool when
    *processes* > 1, shared topology/schedule builds across the protocols
    of each (point, seed) cell either way -- results are bit-identical to
    per-run serial execution (tested).
    """
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep

    if protocols is None:
        protocols = paper_protocols()
    seeds = list(seeds)
    scenario = Scenario(
        settings=settings_list[0], protocols=tuple(protocols), seeds=tuple(seeds)
    )
    result = run_sweep(scenario, list(settings_list), processes=processes)
    series: dict[str, list[float]] = {p: [] for p in protocols}
    extra: dict[str, dict[str, list[float]]] = {
        m: {p: [] for p in protocols} for m in extra_metrics
    }
    xs: list[float] = []
    for idx, st in enumerate(settings_list):
        for proto in protocols:
            run_metrics = result.cell(idx, proto).metrics
            series[proto].append(mean(getattr(m, metric) for m in run_metrics))
            for name_ in extra_metrics:
                extra[name_][proto].append(
                    mean(getattr(m, name_) for m in run_metrics)
                )
        if xs_from == "degree":
            xs.append(mean(result.point_degrees(idx)))
        elif xs_from == "rate":
            xs.append(st.message_rate)
        elif xs_from == "timeout":
            xs.append(st.timeout_slots)
        else:
            xs.append(float(idx))
    return FigureResult(
        name=name,
        xlabel=xlabel,
        ylabel=ylabel,
        xs=xs,
        series=series,
        meta={"seeds": seeds, "protocols": list(protocols), "extra": extra},
    )


def figure6a(
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] = range(3),
    node_counts: Sequence[int] = DENSITY_SWEEP_NODES,
    processes: int | None = 1,
) -> FigureResult:
    """Figure 6(a): successful delivery rate vs nodal density."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure6a",
        "average number of neighbors",
        "successful delivery rate",
        [st.with_(n_nodes=n) for n in node_counts],
        "degree",
        "delivery_rate",
        seeds,
        processes=processes,
    )


def figure6b(
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] = range(3),
    rates: Sequence[float] = RATE_SWEEP,
    processes: int | None = 1,
) -> FigureResult:
    """Figure 6(b): successful delivery rate vs message generation rate."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure6b",
        "message generation rate (/node/slot)",
        "successful delivery rate",
        [st.with_(message_rate=r) for r in rates],
        "rate",
        "delivery_rate",
        seeds,
        processes=processes,
    )


def figure7(
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] = range(3),
    timeouts: Sequence[float] = TIMEOUT_SWEEP,
    processes: int | None = 1,
) -> FigureResult:
    """Figure 7: successful delivery rate vs timeout (100-300 slots)."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure7",
        "timeout (slots)",
        "successful delivery rate",
        [st.with_(timeout_slots=float(t)) for t in timeouts],
        "timeout",
        "delivery_rate",
        seeds,
        processes=processes,
    )


def figure8(
    settings: SimulationSettings | None = None,
    seeds: Iterable[int] = range(3),
    thresholds: Sequence[float] = THRESHOLD_SWEEP,
    protocols: Sequence[str] | None = None,
) -> FigureResult:
    """Figure 8: successful delivery rate vs reliability threshold.

    The threshold only enters at scoring time, so each protocol/seed is
    simulated once and re-scored per threshold.
    """
    st = settings or SimulationSettings()
    if protocols is None:
        protocols = paper_protocols()
    seeds = list(seeds)
    raws: dict[str, list[RawRun]] = {}
    for proto in protocols:
        mac_cls, kwargs = protocol_class(proto)
        raws[proto] = [run_raw(mac_cls, st, seed, kwargs) for seed in seeds]
    series = {
        proto: [mean(r.metrics(threshold=th).delivery_rate for r in runs) for th in thresholds]
        for proto, runs in raws.items()
    }
    return FigureResult(
        name="figure8",
        xlabel="reliability threshold",
        ylabel="successful delivery rate",
        xs=[float(t) for t in thresholds],
        series=series,
        meta={"seeds": seeds, "protocols": list(protocols)},
    )


def figure9a(settings=None, seeds: Iterable[int] = range(3), node_counts=DENSITY_SWEEP_NODES, processes: int | None = 1) -> FigureResult:
    """Figure 9(a): average contention phases per message vs density."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure9a",
        "average number of neighbors",
        "average contention phases per message",
        [st.with_(n_nodes=n) for n in node_counts],
        "degree",
        "avg_contention_phases",
        seeds,
        processes=processes,
    )


def figure9b(settings=None, seeds: Iterable[int] = range(3), rates=RATE_SWEEP, processes: int | None = 1) -> FigureResult:
    """Figure 9(b): average contention phases per message vs rate."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure9b",
        "message generation rate (/node/slot)",
        "average contention phases per message",
        [st.with_(message_rate=r) for r in rates],
        "rate",
        "avg_contention_phases",
        seeds,
        processes=processes,
    )


def figure10a(settings=None, seeds: Iterable[int] = range(3), node_counts=DENSITY_SWEEP_NODES, processes: int | None = 1) -> FigureResult:
    """Figure 10(a): average message completion time vs density.

    The paper discusses completion time for the reliable protocols (BSMA
    "completes" without delivering, see Section 7.3) but plots all four;
    we do the same.  ``meta["extra"]["avg_service_time"]`` carries the
    uncensored companion metric (timed-out messages counted at their full
    lifetime), which the benchmarks use to check the ordering without the
    completed-only survivorship bias.
    """
    st = settings or SimulationSettings()
    return _sweep(
        "figure10a",
        "average number of neighbors",
        "average message completion time (slots)",
        [st.with_(n_nodes=n) for n in node_counts],
        "degree",
        "avg_completion_time",
        seeds,
        extra_metrics=("avg_service_time",),
        processes=processes,
    )


def figure10b(settings=None, seeds: Iterable[int] = range(3), rates=RATE_SWEEP, processes: int | None = 1) -> FigureResult:
    """Figure 10(b): average message completion time vs rate.  See
    :func:`figure10a` for the ``avg_service_time`` companion series."""
    st = settings or SimulationSettings()
    return _sweep(
        "figure10b",
        "message generation rate (/node/slot)",
        "average message completion time (slots)",
        [st.with_(message_rate=r) for r in rates],
        "rate",
        "avg_completion_time",
        seeds,
        extra_metrics=("avg_service_time",),
        processes=processes,
    )
