"""Experiment definitions and runners reproducing Section 7."""

from repro.experiments.config import PROTOCOLS, SimulationSettings, protocol_class
from repro.experiments.runner import RawRun, MeanMetrics, run_raw, run_protocol, compare
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure5,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    table1,
)
from repro.experiments.report import format_figure, format_table1, save_json

__all__ = [
    "PROTOCOLS",
    "SimulationSettings",
    "protocol_class",
    "RawRun",
    "MeanMetrics",
    "run_raw",
    "run_protocol",
    "compare",
    "FigureResult",
    "figure2",
    "figure5",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "figure10a",
    "figure10b",
    "table1",
    "format_figure",
    "format_table1",
    "save_json",
]
