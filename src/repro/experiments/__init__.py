"""Experiment definitions and runners reproducing Section 7."""

from repro.experiments.config import PROTOCOLS, SimulationSettings, protocol_class
from repro.experiments.degradation import degradation_points, degradation_study
from repro.experiments.runner import (
    MeanMetrics,
    RawRun,
    compare,
    run,
    run_once,
    run_protocol,
    run_raw,
)
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import SweepResult, run_sweep, sweep
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure5,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    table1,
)
from repro.experiments.report import format_figure, format_table1, save_json

__all__ = [
    "PROTOCOLS",
    "SimulationSettings",
    "Scenario",
    "protocol_class",
    "RawRun",
    "MeanMetrics",
    "run_raw",
    "run",
    "run_once",
    "run_protocol",
    "compare",
    "SweepResult",
    "run_sweep",
    "sweep",
    "degradation_points",
    "degradation_study",
    "FigureResult",
    "figure2",
    "figure5",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "figure10a",
    "figure10b",
    "table1",
    "format_figure",
    "format_table1",
    "save_json",
]
