"""Plain-text and JSON rendering of reproduced figures/tables."""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.figures import FigureResult

__all__ = ["format_counters", "format_figure", "format_table1", "save_json"]


def format_figure(result: FigureResult, width: int = 10, precision: int = 3) -> str:
    """Render a :class:`FigureResult` as an aligned text table."""
    protos = list(result.series)
    header = f"{result.xlabel[:2*width]:<{2*width}}" + "".join(
        f"{p:>{width}}" for p in protos
    )
    lines = [f"== {result.name}: {result.ylabel} ==", header, "-" * len(header)]
    for i, x in enumerate(result.xs):
        row = f"{x:<{2*width}.4g}" + "".join(
            f"{result.series[p][i]:>{width}.{precision}f}" for p in protos
        )
        lines.append(row)
    if "seeds" in result.meta:
        lines.append(f"(mean of {len(result.meta['seeds'])} seeded runs)")
    return "\n".join(lines)


def format_table1(result: FigureResult) -> str:
    """Render Table 1 with the paper's published values alongside ours."""
    rows = result.meta["rows"]
    paper = result.meta["paper"]
    protos = ("BMMM", "LAMM", "BMW", "BSMA")
    lines = [
        "== Table 1: expected contention phases before the sender sends data ==",
        f"{'parameters':<32}" + "".join(f"{p:>14}" for p in protos),
    ]
    lines.append("-" * len(lines[-1]))
    for i, row in enumerate(rows):
        label = f"q={row['q']}, n={row['n']}, |S'|={row['cover']}"
        ours = "".join(f"{result.series[p][i]:>14.2f}" for p in protos)
        lines.append(f"{label:<32}{ours}")
        theirs = "".join(f"{paper[p][i]:>14.2f}" for p in protos)
        lines.append(f"{'  (paper)':<32}{theirs}")
    return "\n".join(lines)


def format_counters(counters: dict[str, int], title: str = "counters") -> str:
    """Aligned dump of observability counter totals, sorted by key.

    Accepts the flat dicts carried by ``RunMetrics.counters`` /
    ``MeanMetrics.counters`` or a ``Counters.total`` mapping; the key
    dictionary is documented in ``docs/observability.md``.
    """
    if not counters:
        return f"== {title} ==\n  (none)"
    width = max(len(k) for k in counters)
    lines = [f"== {title} =="]
    for key in sorted(counters):
        lines.append(f"  {key:<{width}}  {counters[key]:>10}")
    return "\n".join(lines)


def save_json(result: FigureResult, directory: str | Path) -> Path:
    """Persist a result as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}.json"
    payload = result.as_dict()
    # Timelines contain tuples; JSON round-trips them as lists, which is fine.
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path
