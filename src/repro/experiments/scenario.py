"""The unified experiment surface: one frozen :class:`Scenario` object.

Historically ``run_once`` / ``run_protocol`` / ``compare`` / ``run_sweep``
each grew their own positional/keyword mix (MAC classes here, registry
names there, seeds as an int, an iterable, or implied).  A
:class:`Scenario` bundles the three things every entry point actually
needs — settings (including the fault plan), protocol names and seeds —
and is accepted uniformly by all of them, plus the canonical
:func:`repro.run` / :func:`repro.sweep` wrappers.  The old signatures
still work for one release behind :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.experiments.config import (
    PROTOCOLS,
    SIMULATED_PROTOCOLS,
    SimulationSettings,
)

__all__ = ["Scenario"]


def _as_protocol_tuple(value: Any) -> tuple[str, ...]:
    if isinstance(value, str):
        value = (value,)
    names = tuple(value)
    if not names:
        raise ValueError("Scenario needs at least one protocol")
    for name in names:
        if name not in PROTOCOLS:
            raise KeyError(
                f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
            )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate protocols in {names}")
    return names


def _as_seed_tuple(value: Any) -> tuple[int, ...]:
    if isinstance(value, int):
        value = (value,)
    seeds = tuple(int(s) for s in value)
    if not seeds:
        raise ValueError("Scenario needs at least one seed")
    return seeds


@dataclass(frozen=True)
class Scenario:
    """What to simulate: settings + protocols + seeds (+ scoring threshold).

    Accepted by every experiment entry point (``run``, ``run_once``,
    ``run_protocol``, ``compare``, ``sweep``).  Frozen and normalised:
    ``protocols`` accepts a single name or an iterable of registry names,
    ``seeds`` a single int or any iterable of ints (e.g. ``range(100)``
    for the paper's "means of 100 runs").

    ``threshold`` overrides ``settings.threshold`` at scoring time only
    (the simulation itself is threshold-independent); ``None`` defers to
    the settings.
    """

    settings: SimulationSettings = field(default_factory=SimulationSettings)
    protocols: tuple[str, ...] = SIMULATED_PROTOCOLS
    seeds: tuple[int, ...] = (0,)
    threshold: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.settings, SimulationSettings):
            raise TypeError(
                f"Scenario.settings must be SimulationSettings, got {type(self.settings).__name__}"
            )
        object.__setattr__(self, "protocols", _as_protocol_tuple(self.protocols))
        object.__setattr__(self, "seeds", _as_seed_tuple(self.seeds))
        if self.threshold is not None and not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold!r}")

    # -- single-run conveniences ----------------------------------------------

    @property
    def protocol(self) -> str:
        """The single protocol (raises unless exactly one is configured)."""
        if len(self.protocols) != 1:
            raise ValueError(f"scenario has {len(self.protocols)} protocols, not 1")
        return self.protocols[0]

    @property
    def seed(self) -> int:
        """The single seed (raises unless exactly one is configured)."""
        if len(self.seeds) != 1:
            raise ValueError(f"scenario has {len(self.seeds)} seeds, not 1")
        return self.seeds[0]

    @property
    def scoring_threshold(self) -> float:
        return self.settings.threshold if self.threshold is None else self.threshold

    def with_(self, **changes: Any) -> "Scenario":
        """A modified copy (mirrors ``SimulationSettings.with_``)."""
        return replace(self, **changes)

    def digest(self) -> str:
        """Canonical stable hash of this scenario (settings + protocols +
        seeds + effective threshold) -- the identity the results store
        and manifests record.  Field-order-insensitive and stable across
        processes and releases of the digest schema; see
        :mod:`repro.store.digests`."""
        from repro.store.digests import scenario_digest

        return scenario_digest(self)

    def per_protocol(self) -> Iterable["Scenario"]:
        """Split into single-protocol scenarios (same settings and seeds)."""
        for name in self.protocols:
            yield replace(self, protocols=(name,))
