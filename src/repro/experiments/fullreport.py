"""One-shot reproduction report: every table/figure into a Markdown file.

``repro-mac report --seeds N --out results/`` runs the complete experiment
matrix and writes ``results/REPORT.md`` containing the Table-1 comparison,
each figure as a text table plus an ASCII chart, the saturation analysis,
and the run configuration -- a self-contained artifact for comparing
against the paper.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable

from repro.analysis.saturation import saturation_report
from repro.experiments import figures as F
from repro.experiments.plotting import render_figure
from repro.experiments.report import format_figure, format_table1, save_json

__all__ = ["generate_report"]

_SIM_FIGURES = (
    F.figure6a,
    F.figure6b,
    F.figure7,
    F.figure8,
    F.figure9a,
    F.figure9b,
    F.figure10a,
    F.figure10b,
)


def generate_report(
    out_dir: str | Path,
    seeds: Iterable[int] = range(3),
    chart_width: int = 64,
    settings=None,
) -> Path:
    """Run everything and write ``REPORT.md`` (plus per-figure JSON) under
    *out_dir*; returns the report path.

    *settings* (a :class:`~repro.experiments.config.SimulationSettings`)
    overrides the Table-2 defaults for the simulated figures -- used by the
    tests to keep the report fast.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    seeds = list(seeds)
    t0 = time.time()
    parts: list[str] = [
        "# Reproduction report",
        "",
        "Paper: *Reliable MAC Layer Multicast in IEEE 802.11 Wireless "
        "Networks* (Sun, Huang, Arora, Lai -- ICPP 2002).",
        f"Simulated figures averaged over {len(seeds)} seeded runs "
        "(Table 2 parameters unless swept).",
        "",
        "## Table 1 (analytic)",
        "",
        "```",
        format_table1(F.table1()),
        "```",
        "",
        "## Figure 2 (single clean multicast)",
    ]

    fig2 = F.figure2()
    counts = fig2.meta["frame_counts"]
    parts += [
        "",
        "```",
        f"BMW : {fig2.series['BMW'][0]:.0f} slots  {counts['BMW']}",
        f"BMMM: {fig2.series['BMMM'][0]:.0f} slots  {counts['BMMM']}",
        "```",
        "",
        "## Figure 5 (analytic recurrence)",
        "",
        "```",
        render_figure(F.figure5(), width=chart_width),
        "```",
    ]
    save_json(fig2, out_dir)

    for fig_fn in _SIM_FIGURES:
        result = fig_fn(settings=settings, seeds=seeds)
        save_json(result, out_dir)
        parts += [
            "",
            f"## {result.name}",
            "",
            "```",
            format_figure(result),
            "",
            render_figure(result, width=chart_width),
            "```",
        ]

    sat = saturation_report()
    parts += [
        "",
        "## Saturation limits (100-slot timeout)",
        "",
        "```",
        *(f"{k}: {v}" for k, v in sat.items()),
        "```",
        "",
        f"_Generated in {time.time() - t0:.0f}s._",
        "",
    ]
    report = out_dir / "REPORT.md"
    report.write_text("\n".join(parts))
    return report
