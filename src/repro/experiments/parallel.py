"""Multiprocess experiment execution.

The paper averages 100 seeded runs per sweep point; runs are independent
and CPU-bound, so they parallelize embarrassingly across processes.  This
module keeps the parallelism *outside* the simulator (each worker builds
its own deterministic world from ``(settings, seed)``), which preserves
bit-for-bit reproducibility: parallel and serial execution produce
identical metrics, asserted by the tests.

Workers receive only picklable inputs (protocol *name*, settings, seed)
and return plain metric tuples, so the worker function lives at module
level.  ``processes=None`` uses ``os.cpu_count()``; ``processes=1``
short-circuits to in-process execution (no pool overhead, easier
debugging).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.experiments.config import SimulationSettings, protocol_class
from repro.experiments.runner import MeanMetrics, run_raw
from repro.metrics.aggregate import RunMetrics
from repro.obs.counters import merge_counter_dicts

__all__ = [
    "auto_chunksize",
    "run_seeds_parallel",
    "run_protocol_parallel",
    "compare_parallel",
    "merged_counters",
]


def auto_chunksize(n_jobs: int, workers: int) -> int:
    """A ``pool.map`` chunksize balancing IPC overhead against stragglers.

    The default ``chunksize=1`` pays one pickle/unpickle round-trip per
    job; one giant chunk per worker serializes badly when run times vary.
    Four chunks per worker keeps the IPC count at ``O(workers)`` while
    leaving enough slack for rebalancing.
    """
    if n_jobs <= 0 or workers <= 0:
        return 1
    return max(1, math.ceil(n_jobs / (workers * 4)))


def merged_counters(metrics: Iterable[RunMetrics]) -> dict[str, int]:
    """Sum observability counter totals over per-seed metrics.

    Workers return their counters inside each pickled
    :class:`~repro.metrics.aggregate.RunMetrics`, so the pool merge is a
    plain summation and serial vs parallel execution produce identical
    totals (tested in ``tests/experiments/test_parallel.py``).
    """
    return merge_counter_dicts(m.counters for m in metrics)


def _one_run(args: tuple[str, SimulationSettings, int, float | None]):
    """Worker: one full simulation, returning (RunMetrics, degree)."""
    name, settings, seed, threshold = args
    mac_cls, kwargs = protocol_class(name)
    raw = run_raw(mac_cls, settings, seed, kwargs)
    return raw.metrics(threshold), raw.average_degree


def run_seeds_parallel(
    name: str,
    settings: SimulationSettings,
    seeds: Iterable[int],
    processes: int | None = None,
    threshold: float | None = None,
    executor: ProcessPoolExecutor | None = None,
) -> tuple[list[RunMetrics], list[float]]:
    """Run one protocol at many seeds, fanned out over processes.

    Returns (per-seed metrics, per-seed mean degrees), ordered by seed
    position regardless of completion order.  Jobs are submitted with a
    computed chunksize (:func:`auto_chunksize`), not the ``pool.map``
    default of 1, so the IPC round-trips scale with the worker count
    rather than the seed count.  Pass *executor* to reuse a long-lived
    pool across calls (as :func:`compare_parallel` does); *processes* is
    then ignored.
    """
    seeds = list(seeds)
    jobs = [(name, settings, seed, threshold) for seed in seeds]
    if executor is not None:
        workers = executor._max_workers
        results = list(executor.map(_one_run, jobs, chunksize=auto_chunksize(len(jobs), workers)))
    elif processes == 1 or len(seeds) <= 1:
        results = [_one_run(j) for j in jobs]
    else:
        workers = processes or os.cpu_count() or 1
        workers = min(workers, len(seeds))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_one_run, jobs, chunksize=auto_chunksize(len(jobs), workers)))
    metrics = [m for m, _ in results]
    degrees = [d for _, d in results]
    return metrics, degrees


def run_protocol_parallel(
    name: str,
    settings: SimulationSettings,
    seeds: Iterable[int],
    processes: int | None = None,
) -> MeanMetrics:
    """Parallel counterpart of :func:`repro.experiments.runner.run_protocol`
    -- same result, wall-clock divided by the worker count."""
    metrics, degrees = run_seeds_parallel(name, settings, seeds, processes)
    return MeanMetrics.from_runs(metrics, degrees)


def compare_parallel(
    names: Sequence[str],
    settings: SimulationSettings,
    seeds: Iterable[int],
    processes: int | None = None,
) -> dict[str, MeanMetrics]:
    """Parallel counterpart of :func:`repro.experiments.runner.compare`.

    One process pool is shared across the whole ``names`` loop instead of
    spinning a fresh executor up (and tearing it down) per protocol.  For
    full protocols x points x seeds grids, prefer
    :func:`repro.experiments.sweep.run_sweep`, which additionally shares
    topology builds between protocols.
    """
    seeds = list(seeds)
    if processes == 1 or len(seeds) <= 1:
        return {
            name: run_protocol_parallel(name, settings, seeds, processes=1)
            for name in names
        }
    workers = min(processes or os.cpu_count() or 1, len(seeds))
    out: dict[str, MeanMetrics] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for name in names:
            metrics, degrees = run_seeds_parallel(name, settings, seeds, executor=pool)
            out[name] = MeanMetrics.from_runs(metrics, degrees)
    return out
