"""Golden-result regression checking.

``benchmarks/results/*.json`` hold the most recent full-scale figure
reproductions.  This module compares a freshly computed
:class:`~repro.experiments.figures.FigureResult` against such a golden
file so that refactors of the simulator can be validated quickly:
identical seeds must reproduce identical series (the simulator is
deterministic), and different seeds must stay within a tolerance band.

``repro-mac`` does not expose this directly; it is a library facility used
by the test suite and by developers via::

    from repro.experiments.baselines import compare_to_golden
    report = compare_to_golden(figure6a(seeds=range(3)), "benchmarks/results")
    assert report.ok, report.summary()
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.figures import FigureResult

__all__ = ["Discrepancy", "ComparisonReport", "load_golden", "compare_to_golden"]


@dataclass(frozen=True)
class Discrepancy:
    series: str
    index: int
    golden: float
    current: float

    @property
    def rel_error(self) -> float:
        if self.golden == 0:
            return math.inf if self.current != 0 else 0.0
        return abs(self.current - self.golden) / abs(self.golden)

    def __str__(self) -> str:
        return (
            f"{self.series}[{self.index}]: golden {self.golden:.4g} vs "
            f"current {self.current:.4g} ({self.rel_error:+.1%})"
        )


@dataclass
class ComparisonReport:
    name: str
    discrepancies: list[Discrepancy] = field(default_factory=list)
    missing_series: list[str] = field(default_factory=list)
    structure_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.discrepancies or self.missing_series or self.structure_errors)

    def summary(self) -> str:
        if self.ok:
            return f"{self.name}: matches golden"
        lines = [f"{self.name}: {len(self.discrepancies)} discrepancies"]
        lines += [f"  {d}" for d in self.discrepancies[:10]]
        lines += [f"  missing series: {s}" for s in self.missing_series]
        lines += [f"  structure: {e}" for e in self.structure_errors]
        return "\n".join(lines)


def load_golden(name: str, directory: str | Path) -> dict:
    """Load ``<directory>/<name>.json`` (raises FileNotFoundError)."""
    path = Path(directory) / f"{name}.json"
    return json.loads(path.read_text())


def compare_to_golden(
    result: FigureResult,
    directory: str | Path,
    rel_tol: float = 0.0,
    abs_tol: float = 1e-9,
) -> ComparisonReport:
    """Compare *result* against its stored golden counterpart.

    ``rel_tol=0`` demands bit-for-bit reproduction (appropriate when the
    seeds match the golden run's); a positive tolerance allows seed-level
    noise when comparing across different seed sets.
    """
    report = ComparisonReport(result.name)
    try:
        golden = load_golden(result.name, directory)
    except FileNotFoundError:
        report.structure_errors.append(f"no golden file for {result.name}")
        return report

    if len(golden.get("xs", [])) != len(result.xs):
        report.structure_errors.append(
            f"x-axis length {len(result.xs)} != golden {len(golden.get('xs', []))}"
        )
        return report

    for series, values in golden.get("series", {}).items():
        if series not in result.series:
            report.missing_series.append(series)
            continue
        for i, (g, c) in enumerate(zip(values, result.series[series])):
            if not math.isclose(c, g, rel_tol=rel_tol, abs_tol=abs_tol):
                report.discrepancies.append(Discrepancy(series, i, g, c))
    return report
