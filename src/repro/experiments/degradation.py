"""Degradation study: how the protocols decay as faults grow.

The paper's reliability claims are evaluated in a benign world; this
experiment sweeps one fault axis at a time and watches delivery ratio and
contention phases fall off for BMW, BSMA, BMMM and LAMM:

* ``burst`` -- mean BAD sojourn of a Gilbert-Elliott channel, at a fixed
  stationary loss share (so longer values mean *burstier*, not lossier);
* ``churn`` -- per-node/slot crash hazard (nodes go dark and recover);
* ``sigma`` -- stddev of the Gaussian location error LAMM's geometry sees.

Each axis value becomes one sweep point (``settings.with_(faults=...)``)
and the grid runs through the sweep engine, sharing topology builds across
fault levels (the fault plan lives on the *schedule* cache key only).
CLI surface: ``repro-mac faults``; results feed EXPERIMENTS.md's
"Degradation study" section.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import SIMULATED_PROTOCOLS, SimulationSettings
from repro.experiments.scenario import Scenario
from repro.experiments.sweep import SweepResult, run_sweep
from repro.faults.plan import FaultPlan, GilbertElliott, NodeChurn

__all__ = [
    "FAULT_AXES",
    "BURST_SWEEP",
    "CHURN_SWEEP",
    "SIGMA_SWEEP",
    "fault_plan_for",
    "degradation_points",
    "degradation_study",
]

#: Default values per axis; the leading 0 is the benign baseline point.
BURST_SWEEP: tuple[float, ...] = (0.0, 4.0, 16.0, 64.0)
CHURN_SWEEP: tuple[float, ...] = (0.0, 1e-4, 5e-4, 2e-3)
SIGMA_SWEEP: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1)

FAULT_AXES: dict[str, tuple[float, ...]] = {
    "burst": BURST_SWEEP,
    "churn": CHURN_SWEEP,
    "sigma": SIGMA_SWEEP,
}


def fault_plan_for(
    axis: str,
    value: float,
    *,
    stationary_loss: float = 0.2,
    mean_downtime: float = 200.0,
    base: FaultPlan | None = None,
) -> FaultPlan:
    """The fault plan for one axis point, on top of *base*.

    ``axis="burst"`` interprets *value* as the Gilbert-Elliott mean burst
    length in slots (0 = no burst model), holding the stationary loss
    share at *stationary_loss* so only burstiness varies;
    ``axis="churn"`` as the per-node/slot crash rate (downtime mean fixed
    at *mean_downtime* slots); ``axis="sigma"`` as the location-error
    stddev.  *base* lets the caller pin other faults across the whole
    sweep (the CI smoke grid sweeps churn on top of a fixed burst).
    """
    plan = base if base is not None else FaultPlan()
    if axis == "burst":
        burst = None if value <= 0 else GilbertElliott.from_burst(value, stationary_loss)
        return plan.with_(burst=burst)
    if axis == "churn":
        churn = None if value <= 0 else NodeChurn(crash_rate=value, mean_downtime=mean_downtime)
        return plan.with_(churn=churn)
    if axis == "sigma":
        return plan.with_(location_sigma=float(value))
    raise KeyError(f"unknown fault axis {axis!r}; choose from {sorted(FAULT_AXES)}")


def degradation_points(
    settings: SimulationSettings,
    axis: str,
    values: Sequence[float] | None = None,
    *,
    stationary_loss: float = 0.2,
    mean_downtime: float = 200.0,
    base: FaultPlan | None = None,
) -> list[SimulationSettings]:
    """One sweep point per axis value (*settings* with the plan swapped)."""
    if values is None:
        values = FAULT_AXES[axis]
    base = base if base is not None else settings.faults
    return [
        settings.with_(
            faults=fault_plan_for(
                axis,
                v,
                stationary_loss=stationary_loss,
                mean_downtime=mean_downtime,
                base=base,
            )
        )
        for v in values
    ]


def degradation_study(
    scenario: Scenario | None = None,
    axis: str = "burst",
    values: Sequence[float] | None = None,
    *,
    stationary_loss: float = 0.2,
    mean_downtime: float = 200.0,
    processes: int | None = None,
) -> SweepResult:
    """Run one fault axis through the sweep engine.

    The default scenario is the paper's four simulated protocols at
    Table 2 settings over three seeds -- deliberately small; pass a
    scenario with more seeds (and ``processes``) for smooth curves.
    """
    if scenario is None:
        scenario = Scenario(protocols=SIMULATED_PROTOCOLS, seeds=tuple(range(3)))
    points = degradation_points(
        scenario.settings,
        axis,
        values,
        stationary_loss=stationary_loss,
        mean_downtime=mean_downtime,
    )
    return run_sweep(scenario, points, processes=processes)
