"""Canonical digests: the addresses of the content-addressed store.

A store row is keyed by ``(scenario_digest, protocol, seed,
code_fingerprint)``.  The first component must be a *stable* function of
the frozen configuration -- two processes (today or months apart) that
build the same :class:`~repro.experiments.config.SimulationSettings` must
derive the same hex string, and any change to any field must change it.
That rules out ``hash()`` (salted per process), ``repr`` (field order,
float formatting drift) and pickle (protocol/version dependent).  Instead
every dataclass is lowered to a canonical JSON document -- sorted keys,
explicit type tags, no silent stringification -- and SHA-256 hashed.

The second guard is :func:`code_fingerprint`: a digest over the
simulation-relevant source files of the installed package.  Results are
pure functions of ``(settings, protocol, seed, code)``; fingerprinting the
code means a store populated by an older build can never silently serve
stale cells to a newer one -- the key simply misses and the cell reruns.

Digest values are pinned literally in ``tests/store/test_digests.py``;
bump :data:`DIGEST_VERSION` (and the pins) whenever the canonical form
itself must change.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "DIGEST_VERSION",
    "canonical_payload",
    "canonical_json",
    "digest_of",
    "settings_digest",
    "scenario_digest",
    "code_fingerprint",
    "git_commit",
]

#: Version tag mixed into every digest; bump when the canonical form changes.
#: v2: SimulationSettings grew the ``phy`` PhyProfile field (multi-rate PHY).
DIGEST_VERSION = 2


def canonical_payload(obj: Any, path: str = "settings") -> Any:
    """Lower *obj* to a canonical JSON-safe structure.

    Dataclasses become ``{"__type__": ClassName, <field>: ...}`` (the tag
    keeps structurally identical classes from colliding), tuples become
    lists, and dict keys must already be strings -- sorting happens at
    dump time.  Anything else (sets, numpy scalars, arbitrary objects)
    raises :class:`TypeError` naming the offending field, because a value
    we cannot canonicalise would silently fork the address space.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise TypeError(f"{path}: non-finite float {obj!r} has no canonical JSON form")
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__type__": type(obj).__name__}
        for f in fields(obj):
            out[f.name] = canonical_payload(getattr(obj, f.name), f"{path}.{f.name}")
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"{path}: dict key {key!r} is not a string")
        return {k: canonical_payload(v, f"{path}.{k}") for k, v in obj.items()}
    raise TypeError(
        f"{path}: cannot canonicalise {type(obj).__name__!r} -- only dataclasses, "
        "str/int/float/bool/None, lists/tuples and str-keyed dicts are digestable"
    )


def canonical_json(obj: Any) -> str:
    """The canonical serialisation: sorted keys, tight separators, no NaN."""
    return json.dumps(
        canonical_payload(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest_of(obj: Any, kind: str) -> str:
    """SHA-256 hex of *obj*'s canonical JSON, namespaced by *kind*."""
    doc = json.dumps(
        {"kind": kind, "v": DIGEST_VERSION, "payload": canonical_payload(obj)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def settings_digest(settings, threshold: float | None = None) -> str:
    """The store address of one sweep point.

    *threshold* is the scoring override a sweep may carry; ``None`` means
    "the settings' own threshold", and the digest uses the *effective*
    value so an explicit override equal to the default addresses the same
    cells.
    """
    effective = settings.threshold if threshold is None else threshold
    return digest_of({"settings": settings, "threshold": effective}, kind="settings")


def scenario_digest(scenario) -> str:
    """Stable hash of a full :class:`~repro.experiments.scenario.Scenario`
    (settings + protocols + seeds + effective scoring threshold)."""
    return digest_of(
        {
            "settings": scenario.settings,
            "protocols": list(scenario.protocols),
            "seeds": list(scenario.seeds),
            "threshold": scenario.scoring_threshold,
        },
        kind="scenario",
    )


# --------------------------------------------------------------------------
# Code fingerprint
# --------------------------------------------------------------------------

#: Subpackages whose every ``.py`` file can change simulation results.
_SIM_RELEVANT_DIRS = (
    "analysis",
    "core",
    "faults",
    "geometry",
    "mac",
    "metrics",
    "obs",
    "phy",
    "protocols",
    "sim",
    "workload",
)

#: Individual experiment modules on the result path (the rest of
#: ``experiments`` -- figures, plotting, reports, CLI glue -- only
#: rearranges already-computed numbers).
_SIM_RELEVANT_FILES = (
    "experiments/config.py",
    "experiments/parallel.py",
    "experiments/runner.py",
    "experiments/scenario.py",
    "experiments/sweep.py",
)


def _iter_source(root: Path):
    for rel in _SIM_RELEVANT_FILES:
        path = root / rel
        if path.is_file():
            yield rel, path
    for sub in _SIM_RELEVANT_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            yield str(path.relative_to(root)).replace("\\", "/"), path


_FINGERPRINT_CACHE: dict[str, str] = {}


def code_fingerprint(package_root: str | Path | None = None) -> str:
    """SHA-256 over the simulation-relevant source of the package.

    Hashes ``(relative path, file contents)`` pairs in sorted-path order,
    so renames, additions, deletions and edits all change the value.
    With no argument it fingerprints the *installed* ``repro`` package and
    memoises (source cannot change under a running process).
    """
    if package_root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        cached = _FINGERPRINT_CACHE.get(str(root))
        if cached is not None:
            return cached
    else:
        root = Path(package_root).resolve()
    h = hashlib.sha256(f"code-fingerprint:v{DIGEST_VERSION}".encode())
    for rel, path in sorted(_iter_source(root)):
        h.update(rel.encode("utf-8"))
        h.update(b"\x00")
        h.update(hashlib.sha256(path.read_bytes()).digest())
    digest = h.hexdigest()
    if package_root is None:
        _FINGERPRINT_CACHE[str(root)] = digest
    return digest


def git_commit() -> str | None:
    """The repository HEAD commit, or ``None`` outside a git checkout
    (e.g. a wheel install) -- bench records stamp it for attribution."""
    import repro

    root = Path(repro.__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None
