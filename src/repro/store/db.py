"""The SQLite results store: durable memoisation of sweep cells.

One row per computed cell, keyed by ``(scenario_digest, protocol, seed,
code_fingerprint)`` -- see :mod:`repro.store.digests` for how the
addresses are derived.  The payload is the worker's complete
:class:`~repro.experiments.sweep.JobResult` (zlib-compressed pickle), so
a store hit reproduces exactly what the pool would have sent back and
merged results stay bit-identical to a cold run (pinned by
``tests/experiments/test_sweep_store.py``).

Durability discipline: every :meth:`ResultStore.put` commits immediately.
A campaign killed mid-grid therefore keeps every finished cell, and the
rerun dispatches only the missing ones -- that is the whole resumability
story, there is no separate checkpoint format.

Schema changes go through :data:`ResultStore.SCHEMA_VERSION` and
``_MIGRATIONS``; opening a store written by a *newer* build fails loudly
rather than guessing.
"""

from __future__ import annotations

import pickle
import sqlite3
import zlib
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator

from repro.store.digests import code_fingerprint

__all__ = ["ResultStore", "StoreError"]


class StoreError(RuntimeError):
    """Raised for schema/version problems -- never for plain cache misses."""


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


#: Applied in order; migration ``i`` upgrades a version-``i`` store to
#: ``i + 1``.  Index 0 creates the version-1 schema from scratch.
_MIGRATIONS = (
    """
    CREATE TABLE meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    CREATE TABLE results (
        scenario_digest  TEXT    NOT NULL,
        protocol         TEXT    NOT NULL,
        seed             INTEGER NOT NULL,
        code_fingerprint TEXT    NOT NULL,
        payload          BLOB    NOT NULL,
        created_at       TEXT    NOT NULL,
        last_hit_at      TEXT,
        hits             INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (scenario_digest, protocol, seed, code_fingerprint)
    );
    CREATE INDEX idx_results_fingerprint ON results (code_fingerprint);
    """,
)


class ResultStore:
    """Content-addressed store of finished simulation cells.

    Open with a filesystem path (created on first use) or ``":memory:"``
    for tests.  Usable as a context manager; safe to reopen across
    processes -- SQLite serialises writers, and rows are immutable once
    written (same key => same content, by construction).
    """

    SCHEMA_VERSION = len(_MIGRATIONS)

    def __init__(self, path: str | Path):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    # -- lifecycle ---------------------------------------------------------

    def _migrate(self) -> None:
        cur = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        )
        if cur.fetchone() is None:
            version = 0
        else:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            version = int(row[0]) if row else 0
        if version > self.SCHEMA_VERSION:
            raise StoreError(
                f"{self.path}: store schema v{version} is newer than this build "
                f"supports (v{self.SCHEMA_VERSION}); upgrade the package or use a "
                "fresh store"
            )
        for step in range(version, self.SCHEMA_VERSION):
            self._conn.executescript(_MIGRATIONS[step])
        if version != self.SCHEMA_VERSION:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(self.SCHEMA_VERSION),),
            )
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the cell API ------------------------------------------------------

    def get(
        self,
        scenario_digest: str,
        protocol: str,
        seed: int,
        fingerprint: str | None = None,
    ) -> Any | None:
        """The stored payload for one cell, or ``None`` on miss.

        A row written under a different *fingerprint* is a miss, not an
        error -- stale code means the cell simply recomputes.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        row = self._conn.execute(
            "SELECT payload FROM results WHERE scenario_digest=? AND protocol=?"
            " AND seed=? AND code_fingerprint=?",
            (scenario_digest, protocol, int(seed), fp),
        ).fetchone()
        if row is None:
            return None
        self._conn.execute(
            "UPDATE results SET hits = hits + 1, last_hit_at = ?"
            " WHERE scenario_digest=? AND protocol=? AND seed=? AND code_fingerprint=?",
            (_utcnow(), scenario_digest, protocol, int(seed), fp),
        )
        self._conn.commit()
        return pickle.loads(zlib.decompress(row[0]))

    def put(
        self,
        scenario_digest: str,
        protocol: str,
        seed: int,
        payload: Any,
        fingerprint: str | None = None,
    ) -> None:
        """Insert one finished cell and commit immediately (resumability)."""
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        blob = zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self._conn.execute(
            "INSERT OR REPLACE INTO results"
            " (scenario_digest, protocol, seed, code_fingerprint, payload, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (scenario_digest, protocol, int(seed), fp, blob, _utcnow()),
        )
        self._conn.commit()

    def contains(
        self, scenario_digest: str, protocol: str, seed: int, fingerprint: str | None = None
    ) -> bool:
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE scenario_digest=? AND protocol=?"
            " AND seed=? AND code_fingerprint=?",
            (scenario_digest, protocol, int(seed), fp),
        ).fetchone()
        return row is not None

    def keys(self) -> Iterator[tuple[str, str, int, str]]:
        """Every stored cell address (digest, protocol, seed, fingerprint)."""
        yield from self._conn.execute(
            "SELECT scenario_digest, protocol, seed, code_fingerprint FROM results"
            " ORDER BY scenario_digest, protocol, seed"
        )

    # -- maintenance -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Row/fingerprint/byte totals -- surfaced by ``repro-mac sweep``."""
        n_rows = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        n_fps = self._conn.execute(
            "SELECT COUNT(DISTINCT code_fingerprint) FROM results"
        ).fetchone()[0]
        payload_bytes = (
            self._conn.execute("SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM results")
            .fetchone()[0]
        )
        total_hits = self._conn.execute(
            "SELECT COALESCE(SUM(hits), 0) FROM results"
        ).fetchone()[0]
        return {
            "path": self.path,
            "schema_version": self.SCHEMA_VERSION,
            "n_results": n_rows,
            "n_fingerprints": n_fps,
            "payload_bytes": payload_bytes,
            "total_hits": total_hits,
        }

    def prune(self, keep_fingerprint: str | None = None) -> int:
        """Evict rows from other code fingerprints; returns rows deleted.

        Stale rows are *correct* for the code that wrote them but dead
        weight for the current build -- prune reclaims the space without
        touching live cells.
        """
        fp = keep_fingerprint if keep_fingerprint is not None else code_fingerprint()
        cur = self._conn.execute(
            "DELETE FROM results WHERE code_fingerprint != ?", (fp,)
        )
        self._conn.commit()
        return cur.rowcount

    def vacuum(self) -> None:
        """Compact the database file after eviction."""
        self._conn.execute("VACUUM")
        self._conn.commit()
