"""The SQLite results store: durable memoisation of sweep cells.

One row per computed cell, keyed by ``(scenario_digest, protocol, seed,
code_fingerprint)`` -- see :mod:`repro.store.digests` for how the
addresses are derived.  The payload is the worker's complete
:class:`~repro.experiments.sweep.JobResult` (zlib-compressed pickle), so
a store hit reproduces exactly what the pool would have sent back and
merged results stay bit-identical to a cold run (pinned by
``tests/experiments/test_sweep_store.py``).

Durability discipline: every :meth:`ResultStore.put` commits immediately,
and :meth:`ResultStore.put_many` commits a whole batch in **one**
transaction -- a crash mid-batch rolls the entire batch back, so no
partial cell is ever served (pinned by ``tests/store/test_store.py``).
A campaign killed mid-grid therefore keeps every finished cell, and the
rerun dispatches only the missing ones -- that is the whole resumability
story, there is no separate checkpoint format.

Since schema v2 the store is also the **coordination substrate** of the
distributed campaign service (:mod:`repro.serve`): the ``leases`` table
is a per-campaign work queue of planned cells that workers claim with
expiring, heartbeat-renewed leases.  All queue transitions are single
SQLite transactions (``BEGIN IMMEDIATE``), so any number of worker
processes -- on this host or another sharing the filesystem -- can race
on the same store without double-granting a live lease.  A worker that
dies simply stops renewing; its cells become claimable again the moment
the lease expires.  See ``docs/serve.md`` for the lease lifecycle.

Schema changes go through :data:`ResultStore.SCHEMA_VERSION` and
``_MIGRATIONS``; opening a store written by a *newer* build fails loudly
rather than guessing.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import time
import zlib
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.store.digests import code_fingerprint

__all__ = ["ResultStore", "StoreError", "LeasedCell"]


class StoreError(RuntimeError):
    """Raised for schema/version problems -- never for plain cache misses."""


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


#: Applied in order; migration ``i`` upgrades a version-``i`` store to
#: ``i + 1``.  Index 0 creates the version-1 schema from scratch.
_MIGRATIONS = (
    """
    CREATE TABLE meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    CREATE TABLE results (
        scenario_digest  TEXT    NOT NULL,
        protocol         TEXT    NOT NULL,
        seed             INTEGER NOT NULL,
        code_fingerprint TEXT    NOT NULL,
        payload          BLOB    NOT NULL,
        created_at       TEXT    NOT NULL,
        last_hit_at      TEXT,
        hits             INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (scenario_digest, protocol, seed, code_fingerprint)
    );
    CREATE INDEX idx_results_fingerprint ON results (code_fingerprint);
    """,
    # v2: the distributed campaign service's lease queue (repro.serve).
    """
    CREATE TABLE leases (
        campaign         TEXT    NOT NULL,
        scenario_digest  TEXT    NOT NULL,
        protocol         TEXT    NOT NULL,
        seed             INTEGER NOT NULL,
        code_fingerprint TEXT    NOT NULL,
        job_index        INTEGER NOT NULL,
        job              BLOB    NOT NULL,
        state            TEXT    NOT NULL DEFAULT 'pending',
        worker           TEXT,
        lease_expires_at REAL,
        attempts         INTEGER NOT NULL DEFAULT 0,
        enqueued_at      TEXT    NOT NULL,
        completed_at     TEXT,
        PRIMARY KEY (campaign, scenario_digest, protocol, seed, code_fingerprint)
    );
    CREATE INDEX idx_leases_campaign_state ON leases (campaign, state);
    """,
)


@dataclass(frozen=True)
class LeasedCell:
    """One claimed queue entry: the cell address plus its planned job."""

    campaign: str
    job_index: int
    scenario_digest: str
    protocol: str
    seed: int
    fingerprint: str
    #: The unpickled payload the coordinator enqueued (a
    #: :class:`~repro.experiments.sweep.SweepJob` in the serve service).
    job: Any
    #: Lease attempts including this grant; ``> 1`` means the cell was
    #: reclaimed or stolen from an expired lease.
    attempts: int = 1

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.scenario_digest, self.protocol, self.seed)


def _dumps(payload: Any) -> bytes:
    return zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _loads(blob: bytes) -> Any:
    return pickle.loads(zlib.decompress(blob))


class ResultStore:
    """Content-addressed store of finished simulation cells.

    Open with a filesystem path (created on first use) or ``":memory:"``
    for tests.  Usable as a context manager; safe to reopen across
    processes -- SQLite serialises writers, and rows are immutable once
    written (same key => same content, by construction).

    The connection runs in autocommit mode with an explicit transaction
    around every multi-statement operation (``put_many``, the lease
    queue transitions), so concurrent workers see either all of an
    operation or none of it.
    """

    SCHEMA_VERSION = len(_MIGRATIONS)

    def __init__(self, path: str | Path):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # Autocommit + explicit BEGIN IMMEDIATE where atomicity spans
        # statements; the generous timeout covers competing workers.
        self._conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._migrate()

    # -- lifecycle ---------------------------------------------------------

    def _migrate(self) -> None:
        # Version check and DDL inside ONE immediate transaction: two
        # connections racing to create (or upgrade) the same store file
        # serialise here, and the loser re-reads the version the winner
        # committed instead of re-running its DDL.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cur = self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
            )
            if cur.fetchone() is None:
                version = 0
            else:
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key='schema_version'"
                ).fetchone()
                version = int(row[0]) if row else 0
            if version > self.SCHEMA_VERSION:
                raise StoreError(
                    f"{self.path}: store schema v{version} is newer than this build "
                    f"supports (v{self.SCHEMA_VERSION}); upgrade the package or use a "
                    "fresh store"
                )
            for step in range(version, self.SCHEMA_VERSION):
                for statement in _MIGRATIONS[step].split(";"):
                    if statement.strip():
                        self._conn.execute(statement)
            if version != self.SCHEMA_VERSION:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value)"
                    " VALUES ('schema_version', ?)",
                    (str(self.SCHEMA_VERSION),),
                )
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _transaction(self) -> "sqlite3.Connection":
        """Open an IMMEDIATE transaction; caller commits/rolls back."""
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    # -- the cell API ------------------------------------------------------

    def get(
        self,
        scenario_digest: str,
        protocol: str,
        seed: int,
        fingerprint: str | None = None,
    ) -> Any | None:
        """The stored payload for one cell, or ``None`` on miss.

        A row written under a different *fingerprint* is a miss, not an
        error -- stale code means the cell simply recomputes.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        row = self._conn.execute(
            "SELECT payload FROM results WHERE scenario_digest=? AND protocol=?"
            " AND seed=? AND code_fingerprint=?",
            (scenario_digest, protocol, int(seed), fp),
        ).fetchone()
        if row is None:
            return None
        self._conn.execute(
            "UPDATE results SET hits = hits + 1, last_hit_at = ?"
            " WHERE scenario_digest=? AND protocol=? AND seed=? AND code_fingerprint=?",
            (_utcnow(), scenario_digest, protocol, int(seed), fp),
        )
        return _loads(row[0])

    def put(
        self,
        scenario_digest: str,
        protocol: str,
        seed: int,
        payload: Any,
        fingerprint: str | None = None,
    ) -> None:
        """Insert one finished cell and commit immediately (resumability)."""
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        self._conn.execute(
            "INSERT OR REPLACE INTO results"
            " (scenario_digest, protocol, seed, code_fingerprint, payload, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (scenario_digest, protocol, int(seed), fp, _dumps(payload), _utcnow()),
        )

    def put_many(
        self,
        cells: Iterable[tuple[str, str, int, Any]],
        fingerprint: str | None = None,
    ) -> int:
        """Insert a batch of ``(digest, protocol, seed, payload)`` cells
        in **one** transaction; returns the number written.

        Commit-per-cell is one fsync per cell -- fine for a figure-sized
        grid, ruinous at million-cell scale.  The batch commits atomically:
        a crash (or an unpicklable payload) anywhere in the middle rolls
        the whole batch back, so a reader never sees a partial batch.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        n = 0
        conn = self._transaction()
        try:
            for digest, protocol, seed, payload in cells:
                conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (scenario_digest, protocol, seed, code_fingerprint,"
                    "  payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (digest, protocol, int(seed), fp, _dumps(payload), _utcnow()),
                )
                n += 1
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return n

    def contains(
        self, scenario_digest: str, protocol: str, seed: int, fingerprint: str | None = None
    ) -> bool:
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE scenario_digest=? AND protocol=?"
            " AND seed=? AND code_fingerprint=?",
            (scenario_digest, protocol, int(seed), fp),
        ).fetchone()
        return row is not None

    def keys(self) -> Iterator[tuple[str, str, int, str]]:
        """Every stored cell address (digest, protocol, seed, fingerprint)."""
        yield from self._conn.execute(
            "SELECT scenario_digest, protocol, seed, code_fingerprint FROM results"
            " ORDER BY scenario_digest, protocol, seed"
        )

    # -- the lease queue (repro.serve's coordination substrate) ------------

    def enqueue_jobs(
        self,
        campaign: str,
        entries: Iterable[tuple[int, str, str, int, Any]],
        fingerprint: str | None = None,
    ) -> int:
        """Enqueue planned cells ``(job_index, digest, protocol, seed, job)``.

        ``INSERT OR IGNORE``: re-enqueueing after a coordinator restart
        leaves existing rows -- including ones a worker currently holds
        -- untouched, so in-flight work survives the restart.  Returns
        the number of rows actually inserted.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        n = 0
        conn = self._transaction()
        try:
            for job_index, digest, protocol, seed, job in entries:
                cur = conn.execute(
                    "INSERT OR IGNORE INTO leases"
                    " (campaign, scenario_digest, protocol, seed, code_fingerprint,"
                    "  job_index, job, enqueued_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        campaign,
                        digest,
                        protocol,
                        int(seed),
                        fp,
                        int(job_index),
                        _dumps(job),
                        _utcnow(),
                    ),
                )
                n += cur.rowcount
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return n

    def lease_cells(
        self,
        campaign: str,
        worker: str,
        n: int,
        ttl_s: float,
        fingerprint: str | None = None,
        now: float | None = None,
    ) -> list[LeasedCell]:
        """Atomically claim up to *n* cells for *worker* (TTL seconds).

        Grants pending cells plus any whose lease has expired (the dead
        worker's tail is stolen automatically).  Backpressure-aware
        chunking: while the queue is deep a worker gets its full batch,
        but once fewer than ``2 * n`` cells remain the grant shrinks to
        half the remainder (floor 1), so the tail spreads across every
        live worker instead of sitting in one slow worker's chunk.

        Only rows enqueued under the caller's *fingerprint* are granted:
        a worker running different code must not compute cells addressed
        to another build.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        t = time.time() if now is None else now
        conn = self._transaction()
        try:
            available = conn.execute(
                "SELECT COUNT(*) FROM leases WHERE campaign=? AND code_fingerprint=?"
                " AND (state='pending' OR (state='leased' AND lease_expires_at < ?))",
                (campaign, fp, t),
            ).fetchone()[0]
            if available == 0:
                conn.execute("COMMIT")
                return []
            grant = int(n) if available >= 2 * n else max(1, available // 2)
            rows = conn.execute(
                "SELECT job_index, scenario_digest, protocol, seed, job, attempts"
                " FROM leases WHERE campaign=? AND code_fingerprint=?"
                " AND (state='pending' OR (state='leased' AND lease_expires_at < ?))"
                " ORDER BY job_index LIMIT ?",
                (campaign, fp, t, grant),
            ).fetchall()
            leased = []
            for job_index, digest, protocol, seed, blob, attempts in rows:
                conn.execute(
                    "UPDATE leases SET state='leased', worker=?, lease_expires_at=?,"
                    " attempts=attempts+1"
                    " WHERE campaign=? AND scenario_digest=? AND protocol=? AND seed=?"
                    " AND code_fingerprint=?",
                    (worker, t + ttl_s, campaign, digest, protocol, seed, fp),
                )
                leased.append(
                    LeasedCell(
                        campaign=campaign,
                        job_index=job_index,
                        scenario_digest=digest,
                        protocol=protocol,
                        seed=seed,
                        fingerprint=fp,
                        job=_loads(blob),
                        attempts=int(attempts) + 1,
                    )
                )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return leased

    def renew_leases(
        self, campaign: str, worker: str, ttl_s: float, now: float | None = None
    ) -> int:
        """Extend every live lease *worker* holds; the heartbeat."""
        t = time.time() if now is None else now
        cur = self._conn.execute(
            "UPDATE leases SET lease_expires_at=?"
            " WHERE campaign=? AND worker=? AND state='leased'",
            (t + ttl_s, campaign, worker),
        )
        return cur.rowcount

    def release_leases(self, campaign: str, worker: str) -> int:
        """Hand back every cell *worker* holds (graceful shutdown)."""
        cur = self._conn.execute(
            "UPDATE leases SET state='pending', worker=NULL, lease_expires_at=NULL"
            " WHERE campaign=? AND worker=? AND state='leased'",
            (campaign, worker),
        )
        return cur.rowcount

    def reclaim_expired(self, campaign: str, now: float | None = None) -> int:
        """Reset expired leases to pending; returns cells reclaimed.

        ``lease_cells`` already steals expired cells directly, so this is
        the coordinator's explicit accounting sweep -- the number it
        returns is what the campaign stream reports as reclamations.
        """
        t = time.time() if now is None else now
        cur = self._conn.execute(
            "UPDATE leases SET state='pending', worker=NULL, lease_expires_at=NULL"
            " WHERE campaign=? AND state='leased' AND lease_expires_at < ?",
            (campaign, t),
        )
        return cur.rowcount

    def complete_cells(
        self,
        campaign: str,
        items: Sequence[tuple[str, str, int, Any]],
        fingerprint: str | None = None,
        worker: str | None = None,
    ) -> int:
        """Commit finished cells AND mark their leases done -- one transaction.

        *items* is ``[(digest, protocol, seed, payload), ...]``.  The
        result insert and the queue transition are atomic: a worker
        killed anywhere either contributes the whole batch (results
        stored, leases done) or none of it (leases expire and the cells
        are recomputed).  There is no window where a result exists
        without its lease marked done or vice versa.
        """
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        n = 0
        conn = self._transaction()
        try:
            for digest, protocol, seed, payload in items:
                conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (scenario_digest, protocol, seed, code_fingerprint,"
                    "  payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (digest, protocol, int(seed), fp, _dumps(payload), _utcnow()),
                )
                conn.execute(
                    "UPDATE leases SET state='done', worker=?, lease_expires_at=NULL,"
                    " completed_at=?"
                    " WHERE campaign=? AND scenario_digest=? AND protocol=? AND seed=?"
                    " AND code_fingerprint=?",
                    (worker, _utcnow(), campaign, digest, protocol, int(seed), fp),
                )
                n += 1
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return n

    def done_cells(
        self, campaign: str, fingerprint: str | None = None
    ) -> list[tuple[int, str, str, int]]:
        """Completed queue entries ``(job_index, digest, protocol, seed)``
        in planned-job order -- what the coordinator collects and merges."""
        fp = fingerprint if fingerprint is not None else code_fingerprint()
        return [
            (int(ji), d, p, int(s))
            for ji, d, p, s in self._conn.execute(
                "SELECT job_index, scenario_digest, protocol, seed FROM leases"
                " WHERE campaign=? AND code_fingerprint=? AND state='done'"
                " ORDER BY job_index",
                (campaign, fp),
            )
        ]

    def queue_counts(self, campaign: str, now: float | None = None) -> dict[str, int]:
        """Queue shape: pending/leased/expired/done/total for *campaign*."""
        t = time.time() if now is None else now
        counts = {"pending": 0, "leased": 0, "done": 0}
        for state, n in self._conn.execute(
            "SELECT state, COUNT(*) FROM leases WHERE campaign=? GROUP BY state",
            (campaign,),
        ):
            counts[state] = n
        expired = self._conn.execute(
            "SELECT COUNT(*) FROM leases WHERE campaign=? AND state='leased'"
            " AND lease_expires_at < ?",
            (campaign, t),
        ).fetchone()[0]
        counts["expired"] = expired
        counts["total"] = counts["pending"] + counts["leased"] + counts["done"]
        return counts

    def queue_workers(self, campaign: str) -> dict[str, dict[str, int]]:
        """Per-worker queue view: cells currently leased / completed."""
        workers: dict[str, dict[str, int]] = {}
        for worker, n in self._conn.execute(
            "SELECT worker, COUNT(*) FROM leases WHERE campaign=? AND state='leased'"
            " AND worker IS NOT NULL GROUP BY worker",
            (campaign,),
        ):
            workers.setdefault(worker, {"leased": 0, "done": 0})["leased"] = n
        for worker, n in self._conn.execute(
            "SELECT worker, COUNT(*) FROM leases WHERE campaign=? AND state='done'"
            " AND worker IS NOT NULL GROUP BY worker",
            (campaign,),
        ):
            workers.setdefault(worker, {"leased": 0, "done": 0})["done"] = n
        return workers

    def campaigns(self) -> list[tuple[str, int]]:
        """Every campaign with queue rows, and how many."""
        return [
            (c, int(n))
            for c, n in self._conn.execute(
                "SELECT campaign, COUNT(*) FROM leases GROUP BY campaign"
                " ORDER BY campaign"
            )
        ]

    def clear_campaign(self, campaign: str) -> int:
        """Drop *campaign*'s queue rows (results are never touched)."""
        cur = self._conn.execute("DELETE FROM leases WHERE campaign=?", (campaign,))
        return cur.rowcount

    # -- maintenance -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Cell/fingerprint/byte totals plus per-protocol and
        per-fingerprint breakdowns -- ``repro-mac store stats``."""
        n_rows = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        n_fps = self._conn.execute(
            "SELECT COUNT(DISTINCT code_fingerprint) FROM results"
        ).fetchone()[0]
        payload_bytes = (
            self._conn.execute("SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM results")
            .fetchone()[0]
        )
        total_hits = self._conn.execute(
            "SELECT COALESCE(SUM(hits), 0) FROM results"
        ).fetchone()[0]
        by_protocol = {
            proto: int(n)
            for proto, n in self._conn.execute(
                "SELECT protocol, COUNT(*) FROM results GROUP BY protocol"
                " ORDER BY protocol"
            )
        }
        by_fingerprint = {
            fp: int(n)
            for fp, n in self._conn.execute(
                "SELECT code_fingerprint, COUNT(*) FROM results"
                " GROUP BY code_fingerprint ORDER BY COUNT(*) DESC"
            )
        }
        db_bytes = None
        if self.path != ":memory:":
            try:
                db_bytes = os.path.getsize(self.path)
            except OSError:
                db_bytes = None
        queue_rows = self._conn.execute("SELECT COUNT(*) FROM leases").fetchone()[0]
        return {
            "path": self.path,
            "schema_version": self.SCHEMA_VERSION,
            "n_results": n_rows,
            "n_fingerprints": n_fps,
            "payload_bytes": payload_bytes,
            "db_bytes": db_bytes,
            "total_hits": total_hits,
            "by_protocol": by_protocol,
            "by_fingerprint": by_fingerprint,
            "queue_rows": queue_rows,
            "campaigns": dict(self.campaigns()),
        }

    def prune(self, keep_fingerprint: str | None = None) -> int:
        """Evict rows from other code fingerprints; returns rows deleted.

        Stale rows are *correct* for the code that wrote them but dead
        weight for the current build -- prune reclaims the space without
        touching live cells.  Queue rows addressed to stale fingerprints
        go with them (no current worker could ever lease them).
        """
        fp = keep_fingerprint if keep_fingerprint is not None else code_fingerprint()
        conn = self._transaction()
        try:
            cur = conn.execute(
                "DELETE FROM results WHERE code_fingerprint != ?", (fp,)
            )
            conn.execute("DELETE FROM leases WHERE code_fingerprint != ?", (fp,))
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return cur.rowcount

    def vacuum(self) -> None:
        """Compact the database file after eviction."""
        self._conn.execute("VACUUM")
