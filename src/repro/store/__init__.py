"""``repro.store`` -- the content-addressed results store.

Sweep cells are pure functions of ``(settings, protocol, seed, code)``;
this package makes that purity durable:

* :mod:`repro.store.digests` -- canonical, field-order-insensitive hashes
  of scenarios/settings plus a fingerprint of the simulation-relevant
  source;
* :mod:`repro.store.db` -- the SQLite :class:`ResultStore` keyed by
  ``(scenario_digest, protocol, seed, code_fingerprint)``, committed
  per cell so interrupted campaigns resume;
* :mod:`repro.store.gate` -- the regression gate that reruns a stored
  baseline campaign and diffs metrics, counters and throughput.

See ``docs/store.md`` for the schema, digest semantics, eviction and the
gate's tolerance model.
"""

from repro.store.db import ResultStore, StoreError
from repro.store.digests import (
    code_fingerprint,
    git_commit,
    scenario_digest,
    settings_digest,
)
from repro.store.gate import GateTolerances, run_gate, settings_from_dict

__all__ = [
    "ResultStore",
    "StoreError",
    "code_fingerprint",
    "git_commit",
    "scenario_digest",
    "settings_digest",
    "GateTolerances",
    "run_gate",
    "settings_from_dict",
]
