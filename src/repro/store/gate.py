"""The regression gate: rerun a stored campaign and diff it.

``repro-mac gate --baseline REF`` takes the results JSON a previous
``repro-mac sweep`` wrote (``SweepResult.as_dict()`` -- grid shape,
per-cell mean metrics, merged counters and the ``slots_per_sec``
throughput record), reruns the *same* campaign -- the grid is
reconstructed from the baseline itself, so there is nothing to keep in
sync -- and emits a machine-readable pass/fail report:

* **metric checks** -- per ``(point, protocol)``: delivery rate,
  contention phases, completion time, request counts.  Default tolerance
  is zero because the simulator is deterministic: same settings + seed +
  code must be bit-identical.  ``metric_rel_tol`` loosens that for gating
  across intentional behaviour changes.
* **counter checks** -- the observability counter totals per cell,
  compared exactly (a counter drift with identical metrics is how subtle
  semantic changes announce themselves first).
* **bench check** -- fresh ``slots_per_sec`` must stay above
  ``bench_min_frac`` of the baseline's.  This is deliberately loose
  (default 0.25) because CI boxes are noisy; it exists to catch
  order-of-magnitude perf regressions, not 5% ones.

The gate composes with the store: pass one and the rerun skips every
already-computed cell, making "gate every push" affordable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.config import SimulationSettings
from repro.faults.plan import FaultPlan, GilbertElliott, NodeChurn
from repro.mac.contention import ContentionParams
from repro.obs.counters import diff_counters
from repro.phy.profile import PhyProfile
from repro.store.digests import code_fingerprint, git_commit
from repro.workload.generator import TrafficMix

__all__ = ["GateTolerances", "settings_from_dict", "run_gate", "format_gate_report"]


@dataclass(frozen=True)
class GateTolerances:
    """Knobs of the comparison; defaults demand bit-identical metrics."""

    #: Relative tolerance on scalar metrics (0.0 = exact).
    metric_rel_tol: float = 0.0
    #: Fresh slots/sec must be >= this fraction of the baseline's.
    bench_min_frac: float = 0.25
    #: Compare per-cell counter totals (exact; independent of metric_rel_tol).
    check_counters: bool = True

    def __post_init__(self) -> None:
        if self.metric_rel_tol < 0.0:
            raise ValueError(f"metric_rel_tol must be >= 0, got {self.metric_rel_tol!r}")
        if not 0.0 <= self.bench_min_frac:
            raise ValueError(f"bench_min_frac must be >= 0, got {self.bench_min_frac!r}")


def _build(cls, payload: dict, path: str):
    known = {f for f in cls.__dataclass_fields__}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"{path}: unknown {cls.__name__} fields {sorted(unknown)} -- the baseline "
            "was written by a different schema; regenerate it"
        )
    return cls(**payload)


def settings_from_dict(payload: dict) -> SimulationSettings:
    """Inverse of :func:`repro.obs.manifest.settings_to_dict`.

    Rebuilds the full nested structure (mix, contention, fault plan with
    its burst/churn legs) and rejects unknown keys loudly -- a baseline
    that no longer round-trips must not be silently half-applied.
    """
    payload = dict(payload)
    if "mix" in payload and isinstance(payload["mix"], dict):
        payload["mix"] = _build(TrafficMix, payload["mix"], "settings.mix")
    if "contention" in payload and isinstance(payload["contention"], dict):
        payload["contention"] = _build(
            ContentionParams, payload["contention"], "settings.contention"
        )
    if "faults" in payload and isinstance(payload["faults"], dict):
        fp = dict(payload["faults"])
        if fp.get("burst") is not None:
            fp["burst"] = _build(GilbertElliott, fp["burst"], "settings.faults.burst")
        if fp.get("churn") is not None:
            fp["churn"] = _build(NodeChurn, fp["churn"], "settings.faults.churn")
        payload["faults"] = _build(FaultPlan, fp, "settings.faults")
    if "phy" in payload and isinstance(payload["phy"], dict):
        # PhyProfile coerces the JSON lists back to tuples itself; a
        # baseline written before the multi-rate PHY simply has no "phy"
        # key and gets the default single-rate profile.
        payload["phy"] = _build(PhyProfile, payload["phy"], "settings.phy")
    return _build(SimulationSettings, payload, "settings")


@dataclass
class _Check:
    id: str
    kind: str
    passed: bool
    baseline: Any
    fresh: Any
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "passed": self.passed,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "detail": self.detail,
        }


#: Scalar MeanMetrics fields the gate compares per cell.
_METRIC_FIELDS = (
    "delivery_rate",
    "avg_contention_phases",
    "avg_completion_time",
    "average_degree",
    "n_runs",
    "n_requests",
)


def _close(baseline: float, fresh: float, rel_tol: float) -> bool:
    if baseline == fresh:
        return True
    return abs(fresh - baseline) <= rel_tol * max(abs(baseline), abs(fresh))


@dataclass
class GateReport:
    """Everything the gate decided, JSON-ready."""

    name: str
    baseline_ref: str
    passed: bool
    checks: list[_Check] = field(default_factory=list)
    execution: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        failed = [c for c in self.checks if not c.passed]
        return {
            "kind": "gate-report",
            "name": self.name,
            "baseline": self.baseline_ref,
            "passed": self.passed,
            "n_checks": len(self.checks),
            "n_failed": len(failed),
            "code": {"git_commit": git_commit(), "code_fingerprint": code_fingerprint()},
            "execution": self.execution,
            "checks": [c.as_dict() for c in self.checks],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2))
        return path


def run_gate(
    baseline: dict,
    *,
    name: str = "gate",
    baseline_ref: str = "<dict>",
    processes: int | None = None,
    store=None,
    tolerances: GateTolerances | None = None,
) -> tuple[GateReport, "Any"]:
    """Rerun the baseline's campaign and compare; returns (report, SweepResult).

    *baseline* is the parsed results JSON of a previous sweep
    (``SweepResult.as_dict()``); its points/protocols/seeds/threshold
    define the grid, so the gate always compares like with like.
    """
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep

    tol = tolerances or GateTolerances()
    try:
        protocols = list(baseline["protocols"])
        seeds = list(baseline["seeds"])
        threshold = baseline.get("threshold")
        points_payload = baseline["points"]
    except KeyError as exc:
        raise ValueError(
            f"baseline {baseline_ref} is missing key {exc}: not a sweep results JSON"
        ) from None
    points = [settings_from_dict(p["settings"]) for p in points_payload]
    scenario = Scenario(
        settings=points[0],
        protocols=tuple(protocols),
        seeds=tuple(seeds),
        threshold=threshold,
    )
    result = run_sweep(scenario, points, processes=processes, store=store)

    checks: list[_Check] = []
    for p, point in enumerate(points_payload):
        for proto in protocols:
            base_m = point["metrics"][proto]
            fresh_m = result.mean(p, proto)
            for fname in _METRIC_FIELDS:
                b, f = base_m[fname], getattr(fresh_m, fname)
                checks.append(
                    _Check(
                        id=f"point{p}.{proto}.{fname}",
                        kind="metric",
                        passed=_close(b, f, tol.metric_rel_tol),
                        baseline=b,
                        fresh=f,
                        detail=f"rel_tol={tol.metric_rel_tol}",
                    )
                )
            if tol.check_counters:
                drift = diff_counters(base_m.get("counters", {}), fresh_m.counters)
                checks.append(
                    _Check(
                        id=f"point{p}.{proto}.counters",
                        kind="counters",
                        passed=not drift,
                        baseline=len(base_m.get("counters", {})),
                        fresh=len(fresh_m.counters),
                        detail=(
                            "drifted: "
                            + ", ".join(
                                f"{k} {b}->{f}" for k, (b, f) in sorted(drift.items())
                            )
                            if drift
                            else "identical"
                        ),
                    )
                )

    base_sps = (baseline.get("execution") or {}).get("slots_per_sec")
    fresh_sps = result.slots_per_sec
    if base_sps and fresh_sps is not None and result.store_hits < result.n_jobs:
        checks.append(
            _Check(
                id="bench.slots_per_sec",
                kind="bench",
                passed=fresh_sps >= base_sps * tol.bench_min_frac,
                baseline=base_sps,
                fresh=fresh_sps,
                detail=f"min {tol.bench_min_frac:.0%} of baseline",
            )
        )
    else:
        checks.append(
            _Check(
                id="bench.slots_per_sec",
                kind="bench",
                passed=True,
                baseline=base_sps,
                fresh=fresh_sps,
                detail=(
                    "skipped: campaign served from store"
                    if result.store_hits >= result.n_jobs
                    else "skipped: no baseline throughput"
                ),
            )
        )

    report = GateReport(
        name=name,
        baseline_ref=baseline_ref,
        passed=all(c.passed for c in checks),
        checks=checks,
        execution={
            "n_jobs": result.n_jobs,
            "processes": result.processes,
            "wall_clock_s": result.wall_clock_s,
            "slots_per_sec": result.slots_per_sec,
            "store_hits": result.store_hits,
            "store_misses": result.store_misses,
            "tolerances": {
                "metric_rel_tol": tol.metric_rel_tol,
                "bench_min_frac": tol.bench_min_frac,
                "check_counters": tol.check_counters,
            },
        },
    )
    return report, result


def format_gate_report(report: GateReport, max_failures: int = 20) -> str:
    """Human-readable summary (full detail lives in the JSON report)."""
    failed = [c for c in report.checks if not c.passed]
    lines = [
        f"gate {report.name}: {'PASS' if report.passed else 'FAIL'} "
        f"({len(report.checks) - len(failed)}/{len(report.checks)} checks passed; "
        f"baseline {report.baseline_ref})"
    ]
    for c in failed[:max_failures]:
        lines.append(f"  FAIL {c.id}: baseline={c.baseline!r} fresh={c.fresh!r} ({c.detail})")
    if len(failed) > max_failures:
        lines.append(f"  ... and {len(failed) - max_failures} more failures")
    return "\n".join(lines)
