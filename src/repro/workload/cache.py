"""Shared-world caching for sweep grids.

A sweep point runs every protocol at every seed, but the *world* each run
faces -- node positions, the unit-disk neighbor/interferer sets and the
precomputed traffic schedule -- depends only on ``(settings, seed)``, not
on the protocol.  Rebuilding it per protocol repeats the O(n^2) distance
matrix and the ``n_nodes x horizon`` arrival draw four times per cell.

:class:`WorldCache` memoizes those artifacts per worker process so the
four protocols at one (point, seed) share a single build.  Everything
cached here is *immutable during a static run*: positions and
:class:`~repro.phy.propagation.UnitDiskPropagation` are only mutated by
mobility (which the sweep engine does not use), and a
:class:`~repro.workload.generator.TrafficGenerator` holds a frozen
schedule whose injection is re-instantiated per run.  Mutable per-run
state (:class:`~repro.sim.kernel.Environment`,
:class:`~repro.sim.channel.Channel`, MAC instances, RNG streams) is
*never* cached -- every job still gets a fresh simulation world, which is
what keeps cached runs bit-identical to cold ones (tested in
``tests/experiments/test_sweep.py``).

Two cache levels, because their keys differ:

* **topology** -- keyed by ``(n_nodes, side, radius, interference_factor,
  seed)``: positions + propagation.  A cached
  :class:`UnitDiskPropagation` carries its reception fast-path tables
  (``power_rows`` / ``rx_matrix`` / ``neighbor_lists``, see
  :mod:`repro.phy.propagation`) with it, so the per-topology table build
  is also amortised across the cell's protocols and fault levels;
* **schedule** -- keyed by the topology key plus ``(horizon,
  message_rate, mix)``: the :class:`TrafficGenerator` (its schedule is
  drawn from the topology's neighbor sets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.propagation import UnitDiskPropagation
from repro.workload.generator import TrafficGenerator
from repro.workload.topology import uniform_square

__all__ = ["WorldParts", "WorldCache", "topology_key", "schedule_key"]


@dataclass(frozen=True)
class WorldParts:
    """The protocol-independent artifacts of one ``(settings, seed)`` run."""

    positions: np.ndarray
    propagation: UnitDiskPropagation
    generator: TrafficGenerator


def topology_key(settings, seed: int) -> tuple:
    """The settings fields that determine placement and connectivity."""
    return (
        settings.n_nodes,
        settings.side,
        settings.radius,
        settings.interference_factor,
        seed,
    )


def schedule_key(settings, seed: int) -> tuple:
    """Topology key plus the fields that determine the traffic schedule.

    The fault plan rides on this key (not the topology key): fault points
    never change placement or connectivity, so a degradation sweep still
    shares one O(n^2) topology build across all its fault levels, while
    distinct plans keep distinct cache slots.
    """
    return topology_key(settings, seed) + (
        settings.horizon,
        settings.message_rate,
        settings.mix,
        settings.faults,
    )


class WorldCache:
    """Bounded per-process memo of :class:`WorldParts`.

    The sweep engine orders jobs so that all protocols of one
    ``(point, seed)`` cell are consecutive; a handful of entries is
    therefore enough.  Eviction is least-recently-used: a full cold grid
    behaves exactly like FIFO (old cells never come back), but a
    *resumed* campaign (``repro-mac sweep --store``) dispatches only the
    missing cells, which can interleave partial cells non-consecutively
    -- LRU keeps the still-warm worlds alive in that sparse pattern.
    """

    def __init__(self, maxsize: int = 4):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        #: schedule key -> complete world (positions + propagation + generator).
        self._worlds: dict[tuple, WorldParts] = {}
        #: topology key -> (positions, propagation); lets sweep points that
        #: differ only in horizon/rate/mix (e.g. a rate sweep) still share
        #: one topology build.
        self._topologies: dict[tuple, tuple[np.ndarray, UnitDiskPropagation]] = {}
        #: Build/hit tally (surfaced in sweep bench records).
        self.hits = 0
        self.misses = 0

    def world(self, settings, seed: int) -> WorldParts:
        """The shared artifacts for ``(settings, seed)``, built on miss.

        Construction goes through exactly the code paths
        :func:`~repro.experiments.runner.run_raw` uses for a cold run
        (:func:`uniform_square`, :class:`UnitDiskPropagation`,
        :class:`TrafficGenerator`), so a cache hit changes wall-clock
        only, never results.
        """
        skey = schedule_key(settings, seed)
        cached = self._worlds.pop(skey, None)
        if cached is not None:
            # Reinsert at the back: dict order is the LRU order.
            self._worlds[skey] = cached
            self.hits += 1
            return cached
        self.misses += 1
        tkey = topology_key(settings, seed)
        topo = self._topologies.pop(tkey, None)
        if topo is not None:
            self._topologies[tkey] = topo
        else:
            positions = uniform_square(settings.n_nodes, seed=seed, side=settings.side)
            propagation = UnitDiskPropagation(
                positions,
                settings.radius,
                interference_factor=settings.interference_factor,
            )
            topo = (positions, propagation)
            self._evict(self._topologies)
            self._topologies[tkey] = topo
        positions, propagation = topo
        gen = TrafficGenerator(
            settings.n_nodes,
            propagation.neighbors,
            horizon=settings.horizon,
            message_rate=settings.message_rate,
            mix=settings.mix,
            seed=seed,
        )
        world = WorldParts(positions, propagation, gen)
        self._evict(self._worlds)
        self._worlds[skey] = world
        return world

    def _evict(self, table: dict) -> None:
        while len(table) >= self.maxsize:
            del table[next(iter(table))]

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
