"""Workload generation: node placement and traffic (paper Section 7)."""

from repro.workload.topology import uniform_square, grid_positions, clustered_positions
from repro.workload.generator import TrafficMix, TrafficGenerator

__all__ = [
    "uniform_square",
    "grid_positions",
    "clustered_positions",
    "TrafficMix",
    "TrafficGenerator",
]
