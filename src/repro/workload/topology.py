"""Node placement.

The paper places 100 nodes uniformly at random in a unit square
(Section 7).  The grid and clustered generators are extras used by the
examples and by ablation benchmarks (dense hot-spots stress the protocols
differently from uniform placement).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["uniform_square", "grid_positions", "clustered_positions"]


def uniform_square(n: int, seed: int = 0, side: float = 1.0) -> np.ndarray:
    """*n* points uniform in an axis-aligned square of the given side."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    return rng.random((n, 2)) * side


def grid_positions(rows: int, cols: int, spacing: float, origin=(0.0, 0.0)) -> np.ndarray:
    """A regular ``rows x cols`` grid with the given spacing."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs positive dimensions, got {rows}x{cols}")
    ox, oy = origin
    pts = [(ox + c * spacing, oy + r * spacing) for r in range(rows) for c in range(cols)]
    return np.array(pts, dtype=float)


def clustered_positions(
    n_clusters: int,
    per_cluster: int,
    cluster_radius: float,
    seed: int = 0,
    side: float = 1.0,
) -> np.ndarray:
    """Gaussian clusters with uniformly placed centres, clipped to the square."""
    if n_clusters < 1 or per_cluster < 1:
        raise ValueError("need at least one cluster and one node per cluster")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, 2)) * side
    pts = []
    for c in centers:
        offsets = rng.normal(scale=cluster_radius / math.sqrt(2), size=(per_cluster, 2))
        pts.append(np.clip(c + offsets, 0.0, side))
    return np.vstack(pts)
