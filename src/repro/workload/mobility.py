"""Node mobility (extension beyond the paper's static evaluation).

The paper's motivating upper layers (DSR, AODV, ZRP -- Section 1) exist
because ad-hoc nodes *move*, but its Section 7 evaluation is static.  This
module adds the standard random-waypoint model so the suite can probe the
question mobility raises for LAMM specifically: location knowledge goes
stale, and stale geometry makes the Theorem 3 inference approximate.
The companion experiment compares LAMM-with-oracle against
LAMM-with-beacons (whose :class:`~repro.mac.beacons.NeighborTable` refreshes
and expires naturally) under increasing speed.

The model is *quasi-static*: positions are updated at fixed epoch
boundaries (default every 50 slots) rather than continuously.  At Table 2
scale an epoch is shorter than most MAC exchanges are long, so topology is
effectively constant within an exchange, while drifting across the run --
the regime where staleness matters but the unit-disk reception model stays
meaningful.  Mid-flight boundary cases (a node entering range after a
frame's preamble) are handled conservatively by the channel.
"""

from __future__ import annotations

import numpy as np

from repro.sim.network import Network

__all__ = ["RandomWaypointMobility"]


class RandomWaypointMobility:
    """Random-waypoint movement for every node of a network.

    Parameters
    ----------
    network:
        The network whose propagation state to update.
    speed:
        Distance units per slot (the unit square is 1.0 wide; Table 2's
        radius is 0.2).  Typical "pedestrian" scale at 802.11 slot times
        is ~1e-5..1e-4 per slot.
    epoch:
        Slots between position updates.
    pause:
        Slots a node rests after reaching its waypoint.
    side:
        Width of the square arena.
    seed:
        Waypoint RNG seed.  ``None`` (default) derives it from the
        network's master seed, the same discipline every other stream
        follows (topology, traffic, channel, per-node MACs): two networks
        built from the same seed then move identically, and changing the
        network seed changes the trajectories.  Pass an explicit int to
        vary mobility independently of the rest of the world.
    """

    def __init__(
        self,
        network: Network,
        speed: float,
        epoch: float = 50.0,
        pause: float = 0.0,
        side: float = 1.0,
        seed: int | None = None,
    ):
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        if pause < 0:
            raise ValueError(f"pause must be non-negative, got {pause}")
        self.network = network
        self.speed = float(speed)
        self.epoch = float(epoch)
        self.pause = float(pause)
        self.side = float(side)
        if seed is None:
            seed = network.seed
        self.seed = seed
        self.rng = np.random.default_rng((abs(seed), 0x30B1))
        n = network.n_nodes
        self._waypoints = self.rng.random((n, 2)) * side
        self._pause_until = np.zeros(n)
        #: Epoch updates performed (diagnostics).
        self.updates = 0
        self.process = network.env.process(self._run(), name="mobility")

    def _step(self, dt: float) -> None:
        net = self.network
        pos = net.propagation.positions.copy()
        now = net.env.now
        step = self.speed * dt
        for i in range(len(pos)):
            if now < self._pause_until[i]:
                continue
            delta = self._waypoints[i] - pos[i]
            dist = float(np.hypot(*delta))
            if dist <= step:
                pos[i] = self._waypoints[i]
                self._waypoints[i] = self.rng.random(2) * self.side
                self._pause_until[i] = now + self.pause
            elif dist > 0:
                pos[i] = pos[i] + delta * (step / dist)
        net.propagation.update_positions(pos)
        self.updates += 1

    def _run(self):
        env = self.network.env
        while True:
            yield env.timeout(self.epoch)
            if self.speed > 0:
                self._step(self.epoch)

    def displacement_per_epoch(self) -> float:
        """How far a moving node travels between updates (for choosing an
        epoch small enough relative to the radius)."""
        return self.speed * self.epoch
