"""Traffic generation (paper Section 7, Table 2).

Each node generates messages as a per-slot Bernoulli process with rate
``message_rate`` (Table 2: 0.0005 per node per slot).  Each message is a
unicast / multicast / broadcast with probability 0.2 / 0.4 / 0.4:

* unicast   -- a uniformly random neighbor;
* multicast -- a uniformly random non-empty subset of the neighbors
  (size uniform in ``[1, deg]``; the paper does not specify the group
  draw -- DESIGN.md substitution #5);
* broadcast -- all neighbors.

Isolated nodes (no neighbors) generate no traffic.  All arrival times and
destination draws are precomputed from a dedicated seeded NumPy generator,
so a workload is fully reproducible and independent of protocol behaviour
-- every protocol in a comparison faces the *same* request sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mac.base import MessageKind
from repro.sim.network import Network

__all__ = ["TrafficMix", "TrafficGenerator", "ScheduledMessage"]


@dataclass(frozen=True)
class TrafficMix:
    """Message-type proportions (Table 2 defaults)."""

    unicast: float = 0.2
    multicast: float = 0.4
    broadcast: float = 0.4

    def __post_init__(self):
        total = self.unicast + self.multicast + self.broadcast
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"traffic mix must sum to 1, got {total}")
        if min(self.unicast, self.multicast, self.broadcast) < 0:
            raise ValueError("traffic mix proportions must be non-negative")


@dataclass(frozen=True)
class ScheduledMessage:
    """One precomputed arrival."""

    time: int
    src: int
    kind: MessageKind
    dests: frozenset[int]


class TrafficGenerator:
    """Precomputes a message schedule and injects it into a network."""

    def __init__(
        self,
        n_nodes: int,
        neighbor_sets: list[frozenset[int]],
        horizon: int,
        message_rate: float,
        mix: TrafficMix | None = None,
        seed: int = 0,
    ):
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if not 0.0 <= message_rate <= 1.0:
            raise ValueError(f"message_rate must be in [0, 1], got {message_rate}")
        self.n_nodes = n_nodes
        self.neighbor_sets = neighbor_sets
        self.horizon = int(horizon)
        self.message_rate = message_rate
        self.mix = mix or TrafficMix()
        self.seed = seed
        self.schedule: list[ScheduledMessage] = self._build_schedule()

    def _build_schedule(self) -> list[ScheduledMessage]:
        rng = np.random.default_rng((self.seed, 0xB0A7))
        out: list[ScheduledMessage] = []
        if self.horizon == 0 or self.message_rate == 0.0:
            return out
        # Bernoulli per (node, slot); arrivals are sparse so draw the whole
        # matrix at once and keep only the hits.
        hits = rng.random((self.n_nodes, self.horizon)) < self.message_rate
        nodes, slots = np.nonzero(hits)
        order = np.argsort(slots, kind="stable")
        kinds_cdf = np.cumsum([self.mix.unicast, self.mix.multicast, self.mix.broadcast])
        for node, slot in zip(nodes[order], slots[order]):
            neigh = sorted(self.neighbor_sets[node])
            if not neigh:
                continue
            u = rng.random()
            if u < kinds_cdf[0]:
                kind = MessageKind.UNICAST
                dests = frozenset([neigh[rng.integers(len(neigh))]])
            elif u < kinds_cdf[1]:
                kind = MessageKind.MULTICAST
                size = int(rng.integers(1, len(neigh) + 1))
                dests = frozenset(rng.choice(neigh, size=size, replace=False).tolist())
            else:
                kind = MessageKind.BROADCAST
                dests = frozenset(neigh)
            out.append(ScheduledMessage(int(slot), int(node), kind, dests))
        return out

    # -- injection ----------------------------------------------------------------

    def inject(self, network: Network) -> list:
        """Start a process feeding the schedule into *network*'s MACs.

        Returns the (live) list of submitted
        :class:`~repro.mac.base.MacRequest` objects, filled in as the
        simulation runs.
        """
        requests: list = []
        network.env.process(self._injector(network, requests), name="traffic")
        return requests

    def _injector(self, network: Network, requests: list):
        env = network.env
        for msg in self.schedule:
            if msg.time > env.now:
                yield env.timeout(msg.time - env.now)
            # Under mobility the topology may have drifted since the
            # schedule was drawn: clip the destination set to the *current*
            # neighbors (an upper layer would do the same from its routing
            # table) and drop messages whose targets all moved away.
            dests = msg.dests & network.propagation.neighbors[msg.src]
            if not dests:
                continue
            req = network.mac(msg.src).submit(msg.kind, dests)
            requests.append(req)

    # -- summary -------------------------------------------------------------------

    def counts_by_kind(self) -> dict[MessageKind, int]:
        out: dict[MessageKind, int] = {k: 0 for k in MessageKind}
        for m in self.schedule:
            out[m.kind] += 1
        return out
