"""Command-line interface: regenerate any table/figure of the paper.

Examples::

    repro-mac table1
    repro-mac figure6a --seeds 5
    repro-mac figure7 --seeds 3 --out results/
    repro-mac all --seeds 2 --profile
    repro-mac trace figure6a --seed 1 --protocol LAMM --out results/
    repro-mac sweep --axis nodes --values 40,70,100 --seeds 5 --jobs 0
    repro-mac sweep --axis rate --seeds 20 --store results/store.sqlite
    repro-mac faults --axis burst --values 0,4,16,64 --seeds 3
    repro-mac gate --baseline results/sweep.json --store results/store.sqlite
    repro-mac bench-kernel --churn-events 100000 --out results/
    repro-mac sweep --seeds 5 --telemetry results/sweep.telemetry.jsonl
    repro-mac watch results/sweep.telemetry.jsonl
    repro-mac serve --store results/store.sqlite --workers 2 --seeds 5
    repro-mac work --store results/store.sqlite --campaign serve
    repro-mac store stats results/store.sqlite
    python -m repro figure5

Every ``--out`` invocation also writes a ``<name>.manifest.json``
provenance record (settings, seeds, package version, wall-clock) next to
the JSON result; ``--profile`` prints per-phase wall-clock timings.  The
``trace`` subcommand runs one scenario with the observability bus recording
and dumps the JSONL trace plus a lane diagram (see
``docs/observability.md``).  The ``sweep`` subcommand runs a protocols x
points x seeds grid through the sweep engine
(:mod:`repro.experiments.sweep`) and writes per-point metrics, a
sweep-level manifest and a ``BENCH_<name>.json`` perf record; with
``--store PATH`` the grid runs against the content-addressed results
store (already-computed cells are skipped, interrupted campaigns resume
-- see ``docs/store.md``).  The ``faults`` subcommand is the degradation
study: the same grid machinery sweeping one fault axis (burst / churn /
sigma -- see ``docs/faults.md``) instead of a workload axis.  The
``gate`` subcommand is the regression gate: rerun the campaign described
by a previous sweep's results JSON and fail (exit 1) if metrics,
counters or throughput drifted beyond tolerance, writing a
machine-readable ``GATE_<name>.json`` report.

Campaign observability (``docs/telemetry.md``): ``--telemetry PATH`` on
``sweep`` / ``faults`` streams live progress (cells done/pending,
per-worker heartbeats, rolling slots/sec, ETA, per-cell phase spans) as
append-only JSONL; ``repro-mac watch PATH`` tails and renders it (or
``--once`` for a post-hoc snapshot).  ``--mac-profile`` attaches the
kernel phase profiler, attributing simulate wall clock to MAC phases
(DIFS/backoff, DATA, ACK collection, ...); ``repro-mac trace <figure>
--profile`` prints the same attribution for a single run.

The distributed campaign service (``docs/serve.md``): ``repro-mac
serve`` runs the same grid as ``sweep`` but dispatches pending cells
through the results store's lease queue, where ``repro-mac work``
processes -- on this host (``--workers N`` spawns them) or any host that
can reach the store file -- lease, simulate and commit them; the merged
results are bit-identical to a serial run, killed workers' leases expire
and are reclaimed, and a killed coordinator reruns with zero
recomputation.  ``repro-mac store stats|prune|vacuum`` is the store
maintenance view: cell counts by protocol and code fingerprint, hit
totals, database size, queue backlog; prune evicts stale-fingerprint
cells and vacuum compacts the file.

Subcommands report user errors (unknown protocol, missing baseline or
telemetry file, malformed JSON) as a one-line message on stderr and a
nonzero exit code -- never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import figures as F
from repro.experiments.config import SimulationSettings
from repro.mac.registry import paper_protocols
from repro.experiments.plotting import render_figure
from repro.experiments.report import (
    format_counters,
    format_figure,
    format_table1,
    save_json,
)
from repro.obs.profile import PhaseTimer, format_timings

__all__ = [
    "main",
    "build_parser",
    "build_trace_parser",
    "build_sweep_parser",
    "build_rate_sweep_parser",
    "build_faults_parser",
    "build_gate_parser",
    "build_bench_kernel_parser",
    "build_watch_parser",
    "build_serve_parser",
    "build_work_parser",
    "build_store_parser",
]

#: Experiments that run simulations and accept a ``seeds`` argument.
_SIMULATED = {
    "figure6a": F.figure6a,
    "figure6b": F.figure6b,
    "figure7": F.figure7,
    "figure8": F.figure8,
    "figure9a": F.figure9a,
    "figure9b": F.figure9b,
    "figure10a": F.figure10a,
    "figure10b": F.figure10b,
}
#: Analytic / single-scenario experiments.
_ANALYTIC = {
    "table1": lambda: F.table1(),
    "figure2": lambda: F.figure2(),
    "figure5": lambda: F.figure5(),
}

EXPERIMENTS = sorted(_ANALYTIC) + sorted(_SIMULATED)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-mac`` / ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-mac",
        description=(
            "Reproduce tables/figures from 'Reliable MAC Layer Multicast in "
            "IEEE 802.11 Wireless Networks' (ICPP 2002)."
        ),
        epilog="See also: 'repro-mac trace <figure> --seed S' records a JSONL event trace.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all", "report"],
        help="which table/figure to regenerate ('report' writes a full "
        "Markdown reproduction report)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="number of seeded runs to average (paper: 100; default: 3)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also save the result as JSON (plus a .manifest.json "
        "provenance record) under DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally render an ASCII line chart of each figure",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulated sweeps (results are "
        "bit-identical to serial runs)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-phase wall-clock timings (compute/render/save)",
    )
    return parser


def _save_experiment_manifest(name: str, args_ns, timer: PhaseTimer, out: str):
    from pathlib import Path

    from repro.obs.manifest import RunManifest

    manifest = RunManifest(
        wall_clock_s=timer.total,
        timings=dict(timer.timings),
        extra={
            "experiment": name,
            "n_seeds": getattr(args_ns, "seeds", None),
            "jobs": getattr(args_ns, "jobs", None),
        },
    )
    return manifest.save(Path(out) / f"{name}.manifest.json")


def _run_one(name: str, args_ns) -> None:
    seeds, out, chart, jobs = args_ns.seeds, args_ns.out, args_ns.chart, args_ns.jobs
    timer = PhaseTimer()
    with timer.phase("compute"):
        if name in _ANALYTIC:
            result = _ANALYTIC[name]()
        elif name == "figure8":
            result = _SIMULATED[name](seeds=range(seeds))  # re-scoring; serial
        else:
            result = _SIMULATED[name](seeds=range(seeds), processes=jobs)
    with timer.phase("render"):
        if name == "table1":
            print(format_table1(result))
        else:
            print(format_figure(result))
            if chart and name != "figure2":
                print()
                print(render_figure(result))
    print(f"[{name} done in {timer.total:.1f}s]")
    if out:
        with timer.phase("save"):
            path = save_json(result, out)
            manifest_path = _save_experiment_manifest(name, args_ns, timer, out)
        print(f"[saved {path}]")
        print(f"[manifest {manifest_path}]")
    if args_ns.profile:
        print(timer.report(title=f"{name} profile"))
    print()


# --------------------------------------------------------------------------
# `repro-mac sweep` -- run a protocols x points x seeds grid
# --------------------------------------------------------------------------

#: Sweep axes: flag value -> (settings field, value parser).
_SWEEP_AXES = {
    "nodes": ("n_nodes", int),
    "rate": ("message_rate", float),
    "timeout": ("timeout_slots", float),
}


def _print_execution(result) -> None:
    """The shared one-line execution summary of a finished grid."""
    if result.slots_per_sec is not None:
        rate = f"{result.slots_per_sec:,.0f} slots/s"
    elif result.store_served:
        rate = "store-served, no fresh throughput"
    else:
        rate = "0 slots/s"
    print(
        f"[{result.n_jobs} jobs, {result.processes} workers, chunksize {result.chunksize}; "
        f"world cache {result.cache_hits}/{result.cache_hits + result.cache_misses} hits; "
        f"{rate}]"
    )
    if result.store_path is not None:
        print(
            f"[store {result.store_path}: {result.store_hits} cells served, "
            f"{result.store_misses} computed]"
        )


def build_sweep_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac sweep`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac sweep",
        description=(
            "Run a protocols x points x seeds grid through the sweep engine: "
            "one long-lived process pool, shared topology/schedule builds per "
            "(point, seed) cell, bit-identical metrics to serial runs."
        ),
    )
    parser.add_argument(
        "--axis",
        choices=sorted(_SWEEP_AXES),
        default="nodes",
        help="which Table-2 parameter the points sweep (default: nodes)",
    )
    parser.add_argument(
        "--values",
        default=None,
        metavar="V1,V2,...",
        help="comma-separated sweep values (defaults: the paper's sweep "
        "for the chosen axis)",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(paper_protocols()),
        metavar="P1,P2,...",
        help=f"protocols to run (default: {','.join(paper_protocols())})",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="seeded runs per (point, protocol) cell (paper: 100; default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (0 = one per CPU core, 1 = in-process; default 0)",
    )
    parser.add_argument(
        "--chunksize", type=int, default=None, metavar="N",
        help="jobs per pool chunk (default: whole (point, seed) cells)",
    )
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="SLOTS",
        help="override simulation horizon at every point (smoke/CI runs)",
    )
    parser.add_argument(
        "--name", default="sweep", metavar="NAME",
        help="basename for the result/manifest/BENCH files (default: sweep)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="content-addressed results store (SQLite): skip cells already "
        "computed under this settings digest + code fingerprint, commit "
        "fresh cells as they finish so an interrupted campaign resumes",
    )
    _add_telemetry_arguments(parser)
    return parser


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-observability flags shared by ``sweep`` and ``faults``."""
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="stream live campaign telemetry (append-only JSONL: progress, "
        "worker heartbeats, per-cell phase spans) to PATH; follow it from "
        "another terminal with 'repro-mac watch PATH'",
    )
    parser.add_argument(
        "--mac-profile", action="store_true",
        help="attach the kernel phase profiler to every fresh run: simulate "
        "wall clock attributed to MAC phases (DIFS/backoff, DATA, ACK "
        "collection, ...), aggregated per protocol into the manifest; "
        "results stay bit-identical",
    )


def _print_campaign_observability(result) -> None:
    """Post-grid report of the ``--telemetry`` / ``--mac-profile`` flags."""
    from repro.obs.profiler import format_phase_profile

    if result.mac_profile:
        for proto in result.protocols:
            phases = result.mac_profile.get(proto)
            if phases:
                print(format_phase_profile(phases, title=f"{proto} MAC phase profile"))
    if result.telemetry_path is not None:
        print(f"[telemetry {result.telemetry_path}]")


def _sweep_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.experiments.figures import DENSITY_SWEEP_NODES, RATE_SWEEP, TIMEOUT_SWEEP
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep, save_bench, sweep_manifest

    args = build_sweep_parser().parse_args(argv)
    field, parse = _SWEEP_AXES[args.axis]
    defaults = {"nodes": DENSITY_SWEEP_NODES, "rate": RATE_SWEEP, "timeout": TIMEOUT_SWEEP}
    values = (
        [parse(v) for v in args.values.split(",") if v]
        if args.values
        else list(defaults[args.axis])
    )
    base = SimulationSettings()
    if args.horizon is not None:
        base = base.with_(horizon=args.horizon)
    points = [base.with_(**{field: v}) for v in values]
    protocols = [p for p in args.protocols.split(",") if p]

    scenario = Scenario(
        settings=base, protocols=tuple(protocols), seeds=tuple(range(args.seeds))
    )
    result = run_sweep(
        scenario,
        points,
        processes=args.jobs or None,
        chunksize=args.chunksize,
        store=args.store,
        telemetry=args.telemetry,
        profile=args.mac_profile,
        campaign=args.name,
    )

    for idx, value in enumerate(values):
        print(f"== {args.axis} = {value} (mean degree {sum(result.point_degrees(idx)) / len(result.point_degrees(idx)):.2f}) ==")
        for proto in protocols:
            mm = result.mean(idx, proto)
            print(
                f"  {proto:<10} delivery {mm.delivery_rate:6.3f}"
                f"  phases {mm.avg_contention_phases:7.2f}"
                f"  completion {mm.avg_completion_time:8.1f}"
                f"  ({mm.n_runs} runs, {mm.n_requests} requests)"
            )
    print()
    print(format_timings(result.timings, title=f"{args.name} phases"))
    _print_execution(result)
    _print_campaign_observability(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    result_path = out_dir / f"{args.name}.json"
    result_path.write_text(json.dumps(result.as_dict(), indent=2, default=str))
    manifest = sweep_manifest(result, name=args.name)
    manifest_path = manifest.save(out_dir / f"{args.name}.manifest.json")
    bench_path = save_bench(result, args.name, out_dir)
    print(format_counters(manifest.counters, title="grid counter totals"))
    print(f"[results {result_path}]")
    print(f"[manifest {manifest_path}]")
    print(f"[bench {bench_path}]")
    return 0


# --------------------------------------------------------------------------
# `repro-mac rate-sweep` -- throughput vs reliability across MCS spreads
# --------------------------------------------------------------------------


def build_rate_sweep_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac rate-sweep`` subcommand."""
    from repro.experiments.ratesweep import RATE_PROFILES, RATE_SWEEP_PROTOCOLS

    parser = argparse.ArgumentParser(
        prog="repro-mac rate-sweep",
        description=(
            "Rate sweep: run the same Table-2 world under widening PHY rate "
            "tables (single-rate up to an aggressive 3-tier MCS spread) and "
            "compare fixed-rate vs. rate-adaptive multicast -- delivered "
            "throughput against reliability.  Writes BENCH_<name>.json."
        ),
    )
    parser.add_argument(
        "--profiles",
        default=",".join(RATE_PROFILES),
        metavar="P1,P2,...",
        help=f"rate profiles to sweep (default: {','.join(RATE_PROFILES)})",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(RATE_SWEEP_PROTOCOLS),
        metavar="P1,P2,...",
        help=f"protocols to run (default: {','.join(RATE_SWEEP_PROTOCOLS)})",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="seeded runs per (profile, protocol) cell (default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (0 = one per CPU core, 1 = in-process; default 0)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, metavar="N", help="override node count"
    )
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="SLOTS",
        help="override simulation horizon at every point (smoke/CI runs)",
    )
    parser.add_argument(
        "--name", default="rate", metavar="NAME",
        help="basename for the result/manifest/BENCH files (default: rate)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="content-addressed results store (SQLite); same semantics as "
        "'repro-mac sweep --store'",
    )
    _add_telemetry_arguments(parser)
    return parser


def _rate_sweep_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.experiments.ratesweep import (
        RATE_PROFILES,
        rate_bench_record,
        run_rate_sweep,
        save_rate_bench,
    )
    from repro.experiments.sweep import sweep_manifest

    args = build_rate_sweep_parser().parse_args(argv)
    profile_names = [p for p in args.profiles.split(",") if p]
    unknown = [p for p in profile_names if p not in RATE_PROFILES]
    if unknown:
        raise KeyError(
            f"unknown rate profile(s) {unknown}; choose from {sorted(RATE_PROFILES)}"
        )
    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    base = SimulationSettings(**overrides)
    protocols = [p for p in args.protocols.split(",") if p]
    result, names = run_rate_sweep(
        base,
        protocols=protocols,
        profiles={n: RATE_PROFILES[n] for n in profile_names},
        seeds=tuple(range(args.seeds)),
        processes=args.jobs or None,
        store=args.store,
        telemetry=args.telemetry,
        profile=args.mac_profile,
        campaign=args.name,
    )

    record = rate_bench_record(result, names, name=args.name)
    for cell in record["cells"]:
        print(
            f"== {cell['profile']:<10} {cell['protocol']:<6}"
            f"  delivery {cell['delivery_rate']:6.3f}"
            f"  thru {cell['delivered_per_kslot']:6.2f}/kslot"
            f"  completion {cell['avg_completion_time']:8.1f}"
            f"  ({cell['n_runs']} runs)"
        )
    print()
    print(format_timings(result.timings, title=f"{args.name} phases"))
    _print_execution(result)
    _print_campaign_observability(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = result.as_dict()
    payload["rate_profiles"] = names
    result_path = out_dir / f"{args.name}.json"
    result_path.write_text(json.dumps(payload, indent=2, default=str))
    manifest = sweep_manifest(result, name=args.name)
    manifest.extra.update({"kind": "rate-sweep", "rate_profiles": names})
    manifest_path = manifest.save(out_dir / f"{args.name}.manifest.json")
    bench_path = save_rate_bench(result, names, out_dir, name=args.name)
    print(f"[results {result_path}]")
    print(f"[manifest {manifest_path}]")
    print(f"[bench {bench_path}]")
    return 0


# --------------------------------------------------------------------------
# `repro-mac faults` -- degradation study over one fault axis
# --------------------------------------------------------------------------


def build_faults_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac faults`` subcommand."""
    from repro.experiments.degradation import FAULT_AXES

    parser = argparse.ArgumentParser(
        prog="repro-mac faults",
        description=(
            "Degradation study: sweep one fault axis (Gilbert-Elliott burst "
            "length, node-churn rate, or location-error sigma) through the "
            "sweep engine and report delivery/contention decay per protocol."
        ),
    )
    parser.add_argument(
        "--axis",
        choices=sorted(FAULT_AXES),
        default="burst",
        help="which impairment the points sweep (default: burst)",
    )
    parser.add_argument(
        "--values",
        default=None,
        metavar="V1,V2,...",
        help="comma-separated axis values (default: the study's grid for "
        "the chosen axis; 0 = benign baseline point)",
    )
    parser.add_argument(
        "--burst-loss", type=float, default=0.2, metavar="P",
        help="stationary BAD-state share held fixed while the burst axis "
        "varies burstiness (default 0.2)",
    )
    parser.add_argument(
        "--base-burst", type=float, default=0.0, metavar="SLOTS",
        help="add a fixed Gilbert-Elliott burst (mean length SLOTS) under "
        "every point of a churn/sigma sweep (0 = off; default 0)",
    )
    parser.add_argument(
        "--downtime", type=float, default=200.0, metavar="SLOTS",
        help="mean downtime of a crashed node (default 200)",
    )
    parser.add_argument(
        "--give-up", type=int, default=0, metavar="N",
        help="per-receiver retry cap at every point (0 = never; default 0)",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(paper_protocols()),
        metavar="P1,P2,...",
        help=f"protocols to run (default: {','.join(paper_protocols())})",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="seeded runs per (point, protocol) cell (default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (0 = one per CPU core, 1 = in-process; default 0)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, metavar="N", help="override node count"
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="override message generation rate",
    )
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="SLOTS",
        help="override simulation horizon at every point (smoke/CI runs)",
    )
    parser.add_argument(
        "--name", default="faults", metavar="NAME",
        help="basename for the result/manifest/BENCH files (default: faults)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="content-addressed results store (SQLite); same semantics as "
        "'repro-mac sweep --store'",
    )
    _add_telemetry_arguments(parser)
    return parser


#: Fault counters worth a per-point summary line (when nonzero).
_FAULT_COUNTER_KEYS = (
    "faults.burst_losses",
    "faults.crashes",
    "faults.recoveries",
    "faults.rx_dropped",
    "faults.tx_suppressed",
    "faults.receiver_give_ups",
    "lamm.coverage_violations",
)


def _faults_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.experiments.degradation import FAULT_AXES, degradation_points, fault_plan_for
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep, save_bench, sweep_manifest
    from repro.faults import FaultPlan

    args = build_faults_parser().parse_args(argv)
    values = (
        [float(v) for v in args.values.split(",") if v]
        if args.values
        else list(FAULT_AXES[args.axis])
    )
    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.rate is not None:
        overrides["message_rate"] = args.rate
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    base_plan = FaultPlan(receiver_give_up=args.give_up)
    if args.base_burst > 0:
        base_plan = fault_plan_for(
            "burst", args.base_burst, stationary_loss=args.burst_loss, base=base_plan
        )
    base = SimulationSettings(**overrides).with_(faults=base_plan)
    points = degradation_points(
        base,
        args.axis,
        values,
        stationary_loss=args.burst_loss,
        mean_downtime=args.downtime,
    )
    protocols = [p for p in args.protocols.split(",") if p]
    scenario = Scenario(
        settings=base, protocols=tuple(protocols), seeds=tuple(range(args.seeds))
    )
    result = run_sweep(
        scenario,
        points,
        processes=args.jobs or None,
        store=args.store,
        telemetry=args.telemetry,
        profile=args.mac_profile,
        campaign=args.name,
    )

    for idx, value in enumerate(values):
        print(f"== {args.axis} = {value:g} ==")
        point_counters: dict[str, int] = {}
        for proto in protocols:
            mm = result.mean(idx, proto)
            print(
                f"  {proto:<10} delivery {mm.delivery_rate:6.3f}"
                f"  phases {mm.avg_contention_phases:7.2f}"
                f"  completion {mm.avg_completion_time:8.1f}"
                f"  ({mm.n_runs} runs, {mm.n_requests} requests)"
            )
            for key, n in mm.counters.items():
                point_counters[key] = point_counters.get(key, 0) + n
        hits = {k: point_counters[k] for k in _FAULT_COUNTER_KEYS if point_counters.get(k)}
        if hits:
            print("  faults: " + "  ".join(f"{k.split('.', 1)[1]}={n}" for k, n in hits.items()))
    print()
    print(format_timings(result.timings, title=f"{args.name} phases"))
    _print_execution(result)
    _print_campaign_observability(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = result.as_dict()
    payload["fault_axis"] = {"axis": args.axis, "values": values}
    result_path = out_dir / f"{args.name}.json"
    result_path.write_text(json.dumps(payload, indent=2, default=str))
    manifest = sweep_manifest(result, name=args.name)
    manifest.extra.update({"kind": "faults", "fault_axis": args.axis, "fault_values": values})
    manifest_path = manifest.save(out_dir / f"{args.name}.manifest.json")
    bench_path = save_bench(result, args.name, out_dir)
    print(format_counters(manifest.counters, title="grid counter totals"))
    print(f"[results {result_path}]")
    print(f"[manifest {manifest_path}]")
    print(f"[bench {bench_path}]")
    return 0


# --------------------------------------------------------------------------
# `repro-mac gate` -- regression gate against a stored baseline campaign
# --------------------------------------------------------------------------


def build_gate_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac gate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac gate",
        description=(
            "Regression gate: rerun the campaign recorded in a previous "
            "sweep's results JSON (its points/protocols/seeds define the "
            "grid) and compare fresh metrics, counter totals and slots/sec "
            "throughput against the baseline with configurable tolerances. "
            "Writes GATE_<name>.json and exits 1 on failure."
        ),
    )
    parser.add_argument(
        "--baseline", required=True, metavar="REF",
        help="path to the baseline results JSON (written by 'repro-mac "
        "sweep --out'; the gate reruns exactly that grid)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="results store: cells already computed are served from SQLite, "
        "making gate-every-push affordable (bench check is skipped when "
        "the whole campaign came from the store)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (0 = one per CPU core, 1 = in-process; default 0)",
    )
    parser.add_argument(
        "--metric-tol", type=float, default=0.0, metavar="REL",
        help="relative tolerance on scalar metrics (default 0.0 = demand "
        "bit-identical results)",
    )
    parser.add_argument(
        "--bench-tol", type=float, default=0.25, metavar="FRAC",
        help="fresh slots/sec must be at least FRAC of the baseline's "
        "(default 0.25 -- catches order-of-magnitude regressions, "
        "tolerates noisy CI boxes)",
    )
    parser.add_argument(
        "--no-counters", action="store_true",
        help="skip the exact per-cell counter comparison",
    )
    parser.add_argument(
        "--name", default="gate", metavar="NAME",
        help="basename for the GATE_<name>.json report (default: gate)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    return parser


def _gate_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.store.gate import GateTolerances, format_gate_report, run_gate

    args = build_gate_parser().parse_args(argv)
    baseline_path = Path(args.baseline)
    baseline = json.loads(baseline_path.read_text())
    tolerances = GateTolerances(
        metric_rel_tol=args.metric_tol,
        bench_min_frac=args.bench_tol,
        check_counters=not args.no_counters,
    )
    report, result = run_gate(
        baseline,
        name=args.name,
        baseline_ref=str(baseline_path),
        processes=args.jobs or None,
        store=args.store,
        tolerances=tolerances,
    )
    _print_execution(result)
    print(format_gate_report(report))
    report_path = report.save(Path(args.out) / f"GATE_{args.name}.json")
    print(f"[gate report {report_path}]")
    return 0 if report.passed else 1


# --------------------------------------------------------------------------
# `repro-mac bench-kernel` -- substrate micro-benchmarks (BENCH_kernel.json)
# --------------------------------------------------------------------------


def build_bench_kernel_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac bench-kernel`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac bench-kernel",
        description=(
            "Micro-benchmark the simulation substrate, one fast path per "
            "case (kernel timeout churn, pooled sleep churn, idle / sparse "
            "/ dense network runs) and write a provenance-stamped "
            "BENCH_<name>.json record (see docs/simulator.md)."
        ),
    )
    parser.add_argument(
        "--churn-events", type=int, default=200_000, metavar="N",
        help="events dispatched by the kernel churn cases (default 200000)",
    )
    parser.add_argument(
        "--protocol", default="BMMM", metavar="NAME",
        help="protocol for the network cases (default BMMM)",
    )
    parser.add_argument(
        "--name", default="kernel", metavar="NAME",
        help="basename for the BENCH_<name>.json record (default: kernel)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help=(
            "run each case N times and record the fastest sample "
            "(best-of-N; wall-clock noise is one-sided, default 1)"
        ),
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    return parser


def _bench_kernel_main(argv: list[str]) -> int:
    from repro.experiments.benchkernel import (
        format_kernel_bench,
        kernel_bench_record,
        save_kernel_bench,
    )

    args = build_bench_kernel_parser().parse_args(argv)
    record = kernel_bench_record(
        args.name,
        churn_events=args.churn_events,
        protocol=args.protocol,
        repeat=args.repeat,
    )
    print(format_kernel_bench(record))
    path = save_kernel_bench(record, args.out)
    print(f"[bench {path}]")
    return 0


# --------------------------------------------------------------------------
# `repro-mac trace` -- record one scenario's JSONL trace + lane diagram
# --------------------------------------------------------------------------


def build_trace_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac trace`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac trace",
        description=(
            "Run one scenario (a figure's Table-2 operating point) with the "
            "observability bus recording; dump the JSONL trace, a lane "
            "diagram, and a run manifest."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(_SIMULATED),
        help="which figure's operating point to trace",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="S", help="run seed (default 0)")
    parser.add_argument(
        "--protocol",
        default="BMMM",
        metavar="NAME",
        help="protocol to trace (default BMMM; any registry name works)",
    )
    parser.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="directory for the .jsonl trace and .manifest.json (default results/)",
    )
    parser.add_argument("--nodes", type=int, default=None, metavar="N", help="override node count")
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="SLOTS", help="override simulation horizon"
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="R", help="override message generation rate"
    )
    parser.add_argument(
        "--lane-width",
        type=int,
        default=120,
        metavar="SLOTS",
        help="max slots rendered in the lane diagram (default 120)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print build/inject/simulate phase timings plus the kernel "
        "phase profiler's MAC-phase attribution of the simulate time",
    )
    return parser


def _trace_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.experiments.config import SimulationSettings, protocol_class
    from repro.experiments.runner import run_raw
    from repro.obs.trace import (
        JsonlTraceWriter,
        frame_type_counts,
        load_trace,
        transmissions_from_trace,
    )
    from repro.sim.trace import lane_diagram

    args = build_trace_parser().parse_args(argv)
    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.rate is not None:
        overrides["message_rate"] = args.rate
    settings = SimulationSettings().with_(**overrides) if overrides else SimulationSettings()
    mac_cls, kwargs = protocol_class(args.protocol)

    out_dir = Path(args.out)
    stem = f"trace_{args.figure}_{args.protocol}_seed{args.seed}"
    trace_path = out_dir / f"{stem}.jsonl"
    with JsonlTraceWriter(trace_path) as writer:
        raw = run_raw(
            mac_cls, settings, args.seed, kwargs,
            subscribers=[writer], profile=args.profile,
        )

    events = load_trace(trace_path)
    print(lane_diagram(transmissions_from_trace(events), max_width=args.lane_width))
    print()
    tx_counts = frame_type_counts(events)
    summary = "  ".join(f"{ft}={n}" for ft, n in sorted(tx_counts.items()))
    print(f"[{len(events)} events; frames on air: {summary or '(none)'}]")
    print(format_counters(dict(raw.counters.total), title="run counters"))

    manifest = raw.manifest(protocol=args.protocol)
    manifest.extra.update({"figure": args.figure, "trace": str(trace_path)})
    manifest_path = manifest.save(out_dir / f"{stem}.manifest.json")
    print(f"[trace {trace_path}]")
    print(f"[manifest {manifest_path}]")
    if args.profile:
        from repro.obs.profiler import format_phase_profile

        print(format_timings(raw.timings, title="run profile"))
        if raw.mac_profile:
            print(format_phase_profile(raw.mac_profile, title="MAC phase profile"))
    return 0


# --------------------------------------------------------------------------
# `repro-mac watch` -- tail/render a campaign telemetry stream
# --------------------------------------------------------------------------


def build_watch_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac watch`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac watch",
        description=(
            "Render a campaign telemetry stream (written by 'repro-mac sweep "
            "--telemetry PATH') as a single-screen progress view: cells "
            "done/pending/store-served, per-worker heartbeats, rolling "
            "slots/sec, ETA, span phase totals.  Follows a live stream "
            "until its 'end' record; works post-hoc on finished or "
            "interrupted streams."
        ),
    )
    parser.add_argument(
        "stream", metavar="FILE",
        help="the telemetry JSONL file to watch",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit (post-hoc snapshot)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in follow mode (default 1.0s)",
    )
    return parser


def _watch_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.obs.telemetry import load_telemetry, render_telemetry

    args = build_watch_parser().parse_args(argv)
    path = Path(args.stream)
    if not path.is_file():
        raise FileNotFoundError(f"no telemetry stream at {path}")
    stream = load_telemetry(path)
    print(render_telemetry(stream))
    if args.once or stream.completed:
        return 0
    try:
        while not stream.completed:
            time.sleep(max(args.interval, 0.05))
            stream = load_telemetry(path)
            # Redraw in place: clear screen, home cursor, render again.
            print("\x1b[2J\x1b[H" + render_telemetry(stream))
    except KeyboardInterrupt:
        print()
        return 130
    return 0


# --------------------------------------------------------------------------
# `repro-mac serve` / `repro-mac work` -- the distributed campaign service
# --------------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac serve",
        description=(
            "Coordinate a distributed campaign: plan the same grid as "
            "'repro-mac sweep', enqueue pending cells into the results "
            "store's lease queue, and merge results committed by 'repro-mac "
            "work' processes (local via --workers, or on any host sharing "
            "the store) in planned-job order -- bit-identical to a serial "
            "run.  Killed workers' leases expire and are reclaimed; "
            "rerunning a killed coordinator recomputes nothing."
        ),
    )
    parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="the results store (SQLite): coordination substrate and "
        "result sink; workers must point at the same file",
    )
    parser.add_argument(
        "--axis",
        choices=sorted(_SWEEP_AXES),
        default="nodes",
        help="which Table-2 parameter the points sweep (default: nodes)",
    )
    parser.add_argument(
        "--values",
        default=None,
        metavar="V1,V2,...",
        help="comma-separated sweep values (defaults: the paper's sweep "
        "for the chosen axis)",
    )
    parser.add_argument(
        "--protocols",
        default=",".join(paper_protocols()),
        metavar="P1,P2,...",
        help=f"protocols to run (default: {','.join(paper_protocols())})",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="seeded runs per (point, protocol) cell (default 3)",
    )
    parser.add_argument(
        "--horizon", type=int, default=None, metavar="SLOTS",
        help="override simulation horizon at every point (smoke/CI runs)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="spawn N local 'repro-mac work' processes for the campaign "
        "(default 0: wait for externally attached workers)",
    )
    parser.add_argument(
        "--campaign", default=None, metavar="NAME",
        help="queue namespace in the store (default: --name); workers "
        "attach with 'repro-mac work --campaign NAME'",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="S",
        help="lease expiry horizon handed to spawned workers and used for "
        "reclamation (default 30s; must exceed one cell's simulate time)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="coordinator poll period: collect/reclaim/fold cadence "
        "(default 0.5s)",
    )
    parser.add_argument(
        "--wait-timeout", type=float, default=None, metavar="S",
        help="fail if no cell is committed for S seconds (default: wait "
        "forever -- daemon mode, workers come and go)",
    )
    parser.add_argument(
        "--worker-dir", default=None, metavar="DIR",
        help="directory for per-worker telemetry streams (default: "
        "<store>.workers/)",
    )
    parser.add_argument(
        "--name", default="serve", metavar="NAME",
        help="basename for the result/manifest/BENCH files (default: serve)",
    )
    parser.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default results/)",
    )
    _add_telemetry_arguments(parser)
    return parser


def _serve_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.experiments.figures import DENSITY_SWEEP_NODES, RATE_SWEEP, TIMEOUT_SWEEP
    from repro.experiments.scenario import Scenario
    from repro.experiments.sweep import run_sweep, save_bench, sweep_manifest
    from repro.serve.service import ServeBackend

    args = build_serve_parser().parse_args(argv)
    field, parse = _SWEEP_AXES[args.axis]
    defaults = {"nodes": DENSITY_SWEEP_NODES, "rate": RATE_SWEEP, "timeout": TIMEOUT_SWEEP}
    values = (
        [parse(v) for v in args.values.split(",") if v]
        if args.values
        else list(defaults[args.axis])
    )
    base = SimulationSettings()
    if args.horizon is not None:
        base = base.with_(horizon=args.horizon)
    points = [base.with_(**{field: v}) for v in values]
    protocols = [p for p in args.protocols.split(",") if p]
    campaign = args.campaign or args.name

    scenario = Scenario(
        settings=base, protocols=tuple(protocols), seeds=tuple(range(args.seeds))
    )
    backend = ServeBackend(
        campaign=campaign,
        lease_ttl=args.lease_ttl,
        poll_s=args.poll,
        spawn_workers=args.workers,
        wait_timeout=args.wait_timeout,
        worker_dir=args.worker_dir,
    )
    result = run_sweep(
        scenario,
        points,
        store=args.store,
        telemetry=args.telemetry,
        profile=args.mac_profile,
        campaign=campaign,
        backend=backend,
    )

    for idx, value in enumerate(values):
        print(f"== {args.axis} = {value} (mean degree {sum(result.point_degrees(idx)) / len(result.point_degrees(idx)):.2f}) ==")
        for proto in protocols:
            mm = result.mean(idx, proto)
            print(
                f"  {proto:<10} delivery {mm.delivery_rate:6.3f}"
                f"  phases {mm.avg_contention_phases:7.2f}"
                f"  completion {mm.avg_completion_time:8.1f}"
                f"  ({mm.n_runs} runs, {mm.n_requests} requests)"
            )
    print()
    print(format_timings(result.timings, title=f"{args.name} phases"))
    _print_execution(result)
    print(
        f"[campaign {campaign}: {backend.workers_seen} workers, "
        f"{backend.reclaimed} leases reclaimed]"
    )
    _print_campaign_observability(result)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    result_path = out_dir / f"{args.name}.json"
    result_path.write_text(json.dumps(result.as_dict(), indent=2, default=str))
    manifest = sweep_manifest(result, name=args.name)
    manifest.extra.update(
        {
            "kind": "serve",
            "campaign": campaign,
            "workers_seen": backend.workers_seen,
            "leases_reclaimed": backend.reclaimed,
        }
    )
    manifest_path = manifest.save(out_dir / f"{args.name}.manifest.json")
    bench_path = save_bench(result, args.name, out_dir)
    print(format_counters(manifest.counters, title="grid counter totals"))
    print(f"[results {result_path}]")
    print(f"[manifest {manifest_path}]")
    print(f"[bench {bench_path}]")
    return 0


def build_work_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac work`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac work",
        description=(
            "Run one campaign worker: lease batches of pending cells from "
            "the store, simulate each through the same run_job path the "
            "process pool uses, and commit every result atomically with "
            "its lease transition.  Exits when the campaign completes; a "
            "killed worker's leases simply expire and its cells are "
            "reclaimed."
        ),
    )
    parser.add_argument(
        "--store", required=True, metavar="PATH",
        help="the coordinator's results store (same file/path)",
    )
    parser.add_argument(
        "--campaign", required=True, metavar="NAME",
        help="campaign queue to serve (the coordinator's --campaign)",
    )
    parser.add_argument(
        "--id", default=None, metavar="WID",
        help="worker identity in leases and telemetry (default: "
        "<hostname>-<pid>)",
    )
    parser.add_argument(
        "--batch", type=int, default=0, metavar="N",
        help="cells leased per request (default 4; the store shrinks "
        "grants near the queue's tail)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="S",
        help="lease expiry horizon; renewed between cells (default 30s)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="sleep between empty lease attempts (default 0.2s)",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after N cells (default: run until the campaign is done)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after S seconds with nothing to lease (default: wait "
        "forever for work)",
    )
    parser.add_argument(
        "--commit-every", type=int, default=1, metavar="N",
        help="commit results every N cells (default 1: per-cell "
        "durability; raise to trade crash exposure for fewer commits)",
    )
    parser.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="write a per-worker heartbeat stream under DIR for the "
        "coordinator to fold into its campaign telemetry (default: "
        "<store>.workers/ next to the store; pass 'none' to disable)",
    )
    return parser


def _work_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.serve.service import worker_stream_dir
    from repro.serve.worker import work_campaign

    args = build_work_parser().parse_args(argv)
    if not Path(args.store).is_file():
        raise FileNotFoundError(
            f"no results store at {args.store}; start the coordinator "
            "('repro-mac serve --store PATH') first"
        )
    if args.telemetry_dir is None:
        args.telemetry_dir = str(worker_stream_dir(args.store))
    elif args.telemetry_dir.lower() == "none":
        args.telemetry_dir = None
    report = work_campaign(
        args.store,
        args.campaign,
        worker_id=args.id,
        batch=args.batch,
        lease_ttl=args.lease_ttl,
        poll_s=args.poll,
        max_cells=args.max_cells,
        idle_timeout=args.idle_timeout,
        commit_every=args.commit_every,
        telemetry_dir=args.telemetry_dir,
    )
    print(
        f"[worker {report.worker_id} campaign {report.campaign}: "
        f"{report.cells_done} cells in {report.wall_clock_s:.1f}s "
        f"({report.leases_taken} leases, {report.cells_stolen} stolen, "
        f"simulate {report.simulate_s:.1f}s)"
    )
    return 0


# --------------------------------------------------------------------------
# `repro-mac store` -- results-store maintenance (stats / prune / vacuum)
# --------------------------------------------------------------------------


def build_store_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-mac store`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-mac store",
        description=(
            "Results-store maintenance.  'stats' reports cell counts by "
            "protocol and code fingerprint, served-hit totals, payload and "
            "file bytes, and any campaign queue backlog; 'prune' evicts "
            "cells (and queue rows) from other code fingerprints; 'vacuum' "
            "compacts the database file."
        ),
    )
    parser.add_argument(
        "action", choices=["stats", "prune", "vacuum"],
        help="what to do to the store",
    )
    parser.add_argument("store", metavar="PATH", help="the store's SQLite file")
    parser.add_argument(
        "--json", action="store_true",
        help="emit 'stats' as machine-readable JSON",
    )
    parser.add_argument(
        "--keep-fingerprint", default=None, metavar="FP",
        help="fingerprint 'prune' keeps (default: the current code's)",
    )
    parser.add_argument(
        "--vacuum", action="store_true", dest="also_vacuum",
        help="compact the file after 'prune'",
    )
    return parser


def _fmt_bytes(n: int | None) -> str:
    if n is None:
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - loop always returns


def _format_store_stats(stats: dict) -> str:
    lines = [
        f"store {stats['path']} (schema v{stats['schema_version']}, "
        f"{_fmt_bytes(stats['db_bytes'])} on disk)",
        f"  cells: {stats['n_results']} across {stats['n_fingerprints']} "
        f"fingerprint(s), {_fmt_bytes(stats['payload_bytes'])} payload, "
        f"{stats['total_hits']} hits served",
    ]
    if stats["by_protocol"]:
        lines.append(
            "  by protocol: "
            + "  ".join(f"{p}={n}" for p, n in stats["by_protocol"].items())
        )
    if stats["by_fingerprint"]:
        lines.append(
            "  by fingerprint: "
            + "  ".join(f"{fp[:12]}={n}" for fp, n in stats["by_fingerprint"].items())
        )
    if stats["queue_rows"]:
        backlog = "  ".join(f"{c}={n}" for c, n in stats["campaigns"].items())
        lines.append(f"  queue: {stats['queue_rows']} row(s) -- {backlog}")
    else:
        lines.append("  queue: empty")
    return "\n".join(lines)


def _store_main(argv: list[str]) -> int:
    from pathlib import Path

    from repro.store.db import ResultStore

    args = build_store_parser().parse_args(argv)
    if not Path(args.store).is_file():
        raise FileNotFoundError(f"no results store at {args.store}")
    store = ResultStore(args.store)
    try:
        if args.action == "stats":
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, indent=2, default=str))
            else:
                print(_format_store_stats(stats))
        elif args.action == "prune":
            before = store.stats()["db_bytes"]
            evicted = store.prune(args.keep_fingerprint)
            print(f"[pruned {evicted} stale-fingerprint cell(s)]")
            if args.also_vacuum:
                store.vacuum()
                after = store.stats()["db_bytes"]
                print(f"[vacuum: {_fmt_bytes(before)} -> {_fmt_bytes(after)}]")
        else:  # vacuum
            before = store.stats()["db_bytes"]
            store.vacuum()
            after = store.stats()["db_bytes"]
            print(f"[vacuum: {_fmt_bytes(before)} -> {_fmt_bytes(after)}]")
    finally:
        store.close()
    return 0


#: Subcommand dispatch table (argv[0] -> implementation).
_SUBCOMMANDS = {
    "trace": _trace_main,
    "sweep": _sweep_main,
    "rate-sweep": _rate_sweep_main,
    "faults": _faults_main,
    "gate": _gate_main,
    "bench-kernel": _bench_kernel_main,
    "watch": _watch_main,
    "serve": _serve_main,
    "work": _work_main,
    "store": _store_main,
}


def _run_subcommand(func, argv: list[str]) -> int:
    """Run a subcommand, turning user errors into one-line messages.

    Unknown protocol names (:func:`protocol_class` raises ``KeyError``),
    missing or malformed baseline / telemetry / trace files, schema
    mismatches and stalled / misaddressed campaigns (``StoreError``) all
    surface as ``repro-mac: error: ...`` on stderr with exit code 2 -- a
    traceback here means a bug, not a typo.
    """
    from repro.store.db import StoreError

    try:
        return func(argv)
    except KeyError as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro-mac: error: {message}", file=sys.stderr)
        return 2
    except (OSError, ValueError, StoreError) as exc:  # includes JSONDecodeError
        print(f"repro-mac: error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        return _run_subcommand(_SUBCOMMANDS[argv[0]], argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        from repro.experiments.fullreport import generate_report

        path = generate_report(args.out or "results", seeds=range(args.seeds))
        print(f"[report written to {path}]")
        return 0
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    t0 = time.time()
    for name in names:
        _run_one(name, args)
    if len(names) > 1:
        print(f"[all {len(names)} experiments done in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
