"""Command-line interface: regenerate any table/figure of the paper.

Examples::

    repro-mac table1
    repro-mac figure6a --seeds 5
    repro-mac figure7 --seeds 3 --out results/
    repro-mac all --seeds 2
    python -m repro figure5
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures as F
from repro.experiments.plotting import render_figure
from repro.experiments.report import format_figure, format_table1, save_json

__all__ = ["main"]

#: Experiments that run simulations and accept a ``seeds`` argument.
_SIMULATED = {
    "figure6a": F.figure6a,
    "figure6b": F.figure6b,
    "figure7": F.figure7,
    "figure8": F.figure8,
    "figure9a": F.figure9a,
    "figure9b": F.figure9b,
    "figure10a": F.figure10a,
    "figure10b": F.figure10b,
}
#: Analytic / single-scenario experiments.
_ANALYTIC = {
    "table1": lambda: F.table1(),
    "figure2": lambda: F.figure2(),
    "figure5": lambda: F.figure5(),
}

EXPERIMENTS = sorted(_ANALYTIC) + sorted(_SIMULATED)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-mac`` / ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-mac",
        description=(
            "Reproduce tables/figures from 'Reliable MAC Layer Multicast in "
            "IEEE 802.11 Wireless Networks' (ICPP 2002)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all", "report"],
        help="which table/figure to regenerate ('report' writes a full "
        "Markdown reproduction report)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        metavar="N",
        help="number of seeded runs to average (paper: 100; default: 3)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also save the result as JSON under DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally render an ASCII line chart of each figure",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulated sweeps (results are "
        "bit-identical to serial runs)",
    )
    return parser


def _run_one(name: str, seeds: int, out: str | None, chart: bool = False, jobs: int = 1) -> None:
    t0 = time.time()
    if name in _ANALYTIC:
        result = _ANALYTIC[name]()
    elif name == "figure8":
        result = _SIMULATED[name](seeds=range(seeds))  # re-scoring; serial
    else:
        result = _SIMULATED[name](seeds=range(seeds), processes=jobs)
    elapsed = time.time() - t0
    if name == "table1":
        print(format_table1(result))
    else:
        print(format_figure(result))
        if chart and name != "figure2":
            print()
            print(render_figure(result))
    print(f"[{name} done in {elapsed:.1f}s]")
    if out:
        path = save_json(result, out)
        print(f"[saved {path}]")
    print()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        from repro.experiments.fullreport import generate_report

        path = generate_report(args.out or "results", seeds=range(args.seeds))
        print(f"[report written to {path}]")
        return 0
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(name, args.seeds, args.out, args.chart, args.jobs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
